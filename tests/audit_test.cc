// Contract-audit subsystem tests: the declarative contract table (and its
// drift self-check against the helper catalog and the runtime helper table),
// the path-sensitive static pass with its witness paths, the distiller, and
// the chaos-replay confirmer — including the end-to-end seeded lock-leak
// CONFIRMED case and the infeasible-path PRUNED case.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/audit/replay.h"
#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/ebpf/text_asm.h"
#include "src/kernel/kernel.h"
#include "src/verifier/audit.h"
#include "src/verifier/cfg.h"
#include "src/verifier/lint.h"
#include "src/verifier/verifier.h"

namespace kflex {
namespace {

std::vector<AuditFinding> Audit(const Program& program, const Analysis* analysis = nullptr) {
  auto cfg = Cfg::Build(program);
  EXPECT_TRUE(cfg.ok()) << cfg.status().ToString();
  if (!cfg.ok()) {
    return {};
  }
  return RunContractAudit(program, *cfg, analysis);
}

// ---- contract table ---------------------------------------------------------

TEST(ContractTable, DerivedFromHelperCatalog) {
  const std::vector<ContractClause>& table = HelperContractTable();
  ASSERT_FALSE(table.empty());

  // Every acquiring helper contributes exactly one release clause naming its
  // destructor; every nullable-returning non-acquiring helper one check
  // clause; nothing else appears.
  for (const HelperContract& contract : AllHelperContracts()) {
    std::vector<const ContractClause*> clauses;
    for (const ContractClause& clause : table) {
      if (clause.helper == contract.id) {
        clauses.push_back(&clause);
      }
    }
    if (contract.acquires != ResourceKind::kNone) {
      ASSERT_EQ(clauses.size(), 1u) << contract.name;
      EXPECT_EQ(clauses[0]->kind, ObligationKind::kRelease);
      EXPECT_EQ(clauses[0]->resource, contract.acquires);
      EXPECT_EQ(clauses[0]->release_helper, contract.destructor);
    } else if (contract.ret == HelperRetType::kMapValueOrNull ||
               contract.ret == HelperRetType::kHeapPtrOrNull ||
               contract.ret == HelperRetType::kSocketOrNull) {
      ASSERT_EQ(clauses.size(), 1u) << contract.name;
      EXPECT_EQ(clauses[0]->kind, ObligationKind::kCheck);
      EXPECT_EQ(clauses[0]->ret, contract.ret);
    } else {
      EXPECT_TRUE(clauses.empty()) << contract.name;
    }
  }
}

// Drift self-check (the audit-selfcheck ctest entry, same shape as
// chaos-selfcheck): every helper the runtime actually registers whose catalog
// contract has acquire/release or nullable-return semantics must be covered
// by the contract table, and the table must not name helpers the runtime
// does not implement.
TEST(AuditSelfCheck, ContractTableMatchesHelperTable) {
  MockKernel kernel;  // registers the full helper set incl. socket helpers
  std::vector<int32_t> registered = kernel.runtime().helpers().Ids();
  std::set<int32_t> table_helpers;
  for (const ContractClause& clause : HelperContractTable()) {
    table_helpers.insert(clause.helper);
  }

  for (int32_t id : registered) {
    const HelperContract* contract = FindHelperContract(id);
    ASSERT_NE(contract, nullptr) << "registered helper " << id << " missing from catalog";
    bool needs_clause =
        contract->acquires != ResourceKind::kNone ||
        (contract->ret == HelperRetType::kMapValueOrNull ||
         contract->ret == HelperRetType::kHeapPtrOrNull ||
         contract->ret == HelperRetType::kSocketOrNull);
    EXPECT_EQ(table_helpers.count(id) != 0, needs_clause)
        << "contract table drifted from helper catalog for " << contract->name
        << " (id " << id << "): add/remove its clause in HelperContractTable()";
  }
  for (int32_t id : table_helpers) {
    EXPECT_TRUE(std::find(registered.begin(), registered.end(), id) != registered.end())
        << "contract table names helper " << id << " the runtime does not register";
  }
}

// ---- test programs ----------------------------------------------------------

// Lock acquired up front, released on the happy path, leaked on the
// allocation-failure path. The verifier rejects this (lock held at exit);
// the audit must flag the oom exit with a concrete witness.
Program LockLeakProgram() {
  Assembler a;
  a.LoadHeapAddr(R6, 64);  // past the runtime-reserved metadata page
  a.Mov(R1, R6);
  a.Call(kHelperKflexSpinLock);
  a.MovImm(R1, 64);
  a.Call(kHelperKflexMalloc);
  Assembler::Label oom = a.NewLabel();
  a.JmpImm(BPF_JEQ, R0, 0, oom);
  a.StImm(BPF_DW, R0, 0, 1);
  a.Mov(R1, R6);
  a.Call(kHelperKflexSpinUnlock);
  a.MovImm(R0, 0);
  a.Exit();
  a.Bind(oom);
  a.MovImm(R0, -1);
  a.Exit();
  auto p = a.Finish("lock_leak", Hook::kTracepoint, ExtensionMode::kKflex, 1 << 20);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

// Same shape but contract-clean: both paths unlock.
Program LockCleanProgram() {
  Assembler a;
  a.LoadHeapAddr(R6, 64);  // past the runtime-reserved metadata page
  a.Mov(R1, R6);
  a.Call(kHelperKflexSpinLock);
  a.MovImm(R1, 64);
  a.Call(kHelperKflexMalloc);
  Assembler::Label oom = a.NewLabel();
  a.JmpImm(BPF_JEQ, R0, 0, oom);
  a.StImm(BPF_DW, R0, 0, 1);
  a.Bind(oom);
  a.Mov(R1, R6);
  a.Call(kHelperKflexSpinUnlock);
  a.MovImm(R0, 0);
  a.Exit();
  auto p = a.Finish("lock_clean", Hook::kTracepoint, ExtensionMode::kKflex, 1 << 20);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

// ---- static pass ------------------------------------------------------------

TEST(ContractAudit, FlagsLockLeakWithWitness) {
  Program program = LockLeakProgram();
  std::vector<AuditFinding> findings = Audit(program);

  const AuditFinding* leak = nullptr;
  for (const AuditFinding& f : findings) {
    if (f.kind == ObligationKind::kRelease && f.resource == ResourceKind::kLock) {
      leak = &f;
    }
  }
  ASSERT_NE(leak, nullptr);
  EXPECT_EQ(leak->helper, kHelperKflexSpinLock);
  EXPECT_TRUE(leak->lock_off_known);
  EXPECT_EQ(leak->lock_off, 64u);
  EXPECT_EQ(leak->source_pc, 3u);   // the kflex_spin_lock call
  EXPECT_EQ(leak->sink_pc, 13u);    // the oom-path exit
  ASSERT_FALSE(leak->path.empty());
  EXPECT_EQ(leak->path.front().pc, 0u);
  EXPECT_EQ(leak->path.back().pc, leak->sink_pc);
  // Exactly one branch decision on the witness: the oom branch, taken.
  std::vector<const WitnessStep*> branches;
  for (const WitnessStep& s : leak->path) {
    if (s.branch >= 0) {
      branches.push_back(&s);
    }
  }
  ASSERT_EQ(branches.size(), 1u);
  EXPECT_EQ(branches[0]->pc, 6u);  // the JEQ (after the 2-slot heap ld_imm64)
  EXPECT_EQ(branches[0]->branch, 0);  // jump taken
  // The cleanup snapshot at that branch holds the open lock.
  ASSERT_EQ(leak->cleanups.size(), 1u);
  ASSERT_EQ(leak->cleanups[0].open.size(), 1u);
  EXPECT_EQ(leak->cleanups[0].open[0].kind, ResourceKind::kLock);
}

TEST(ContractAudit, CleanProgramHasNoReleaseFindings) {
  Program program = LockCleanProgram();
  for (const AuditFinding& f : Audit(program)) {
    EXPECT_NE(f.kind, ObligationKind::kRelease) << f.message;
  }
}

TEST(ContractAudit, FlagsUncheckedMapLookupDeref) {
  Assembler a;
  a.StImm(BPF_W, R10, -4, 0);
  a.LoadMapPtr(R1, 1);
  a.Mov(R2, R10);
  a.AddImm(R2, -4);
  a.Call(kHelperMapLookupElem);
  a.Ldx(BPF_DW, R3, R0, 0);  // deref without a NULL check
  a.MovImm(R0, 0);
  a.Exit();
  auto p = a.Finish("unchecked_lookup", Hook::kTracepoint, ExtensionMode::kKflex, 0);
  ASSERT_TRUE(p.ok());

  std::vector<AuditFinding> findings = Audit(*p);
  const AuditFinding* check = nullptr;
  for (const AuditFinding& f : findings) {
    if (f.kind == ObligationKind::kCheck) {
      check = &f;
    }
  }
  ASSERT_NE(check, nullptr);
  EXPECT_EQ(check->helper, kHelperMapLookupElem);
  EXPECT_EQ(check->sink_pc, 6u);  // the load
}

// The audit is speculative on purpose: it flags the constant-infeasible
// leak path the symbolic verifier would prune. Replay, not the static pass,
// is what prunes it.
Program InfeasibleLeakProgram() {
  Assembler a;
  a.LoadHeapAddr(R6, 64);  // past the runtime-reserved metadata page
  a.Mov(R1, R6);
  a.Call(kHelperKflexSpinLock);
  a.MovImm(R7, 5);
  Assembler::Label unlock = a.NewLabel();
  a.JmpImm(BPF_JEQ, R7, 5, unlock);  // always taken
  a.MovImm(R0, -1);                  // unreachable leak "path"
  a.Exit();
  a.Bind(unlock);
  a.Mov(R1, R6);
  a.Call(kHelperKflexSpinUnlock);
  a.MovImm(R0, 0);
  a.Exit();
  auto p = a.Finish("infeasible_leak", Hook::kTracepoint, ExtensionMode::kKflex, 1 << 20);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

TEST(ContractAudit, ExploresVerifierInfeasiblePaths) {
  Program program = InfeasibleLeakProgram();
  std::vector<AuditFinding> findings = Audit(program);
  bool leak = false;
  for (const AuditFinding& f : findings) {
    if (f.kind == ObligationKind::kRelease && f.resource == ResourceKind::kLock) {
      leak = true;
      // The fall-through edge of the always-taken branch.
      for (const WitnessStep& s : f.path) {
        if (s.pc == 5) {
          EXPECT_EQ(s.branch, 1);
        }
      }
    }
  }
  EXPECT_TRUE(leak);
}

// ---- distiller --------------------------------------------------------------

TEST(Distill, LockLeakWitnessRoundTripsThroughTextAsm) {
  Program program = LockLeakProgram();
  std::vector<AuditFinding> findings = Audit(program);
  const AuditFinding* leak = nullptr;
  for (const AuditFinding& f : findings) {
    if (f.kind == ObligationKind::kRelease) {
      leak = &f;
    }
  }
  ASSERT_NE(leak, nullptr);

  auto witness = DistillWitness(program, *leak);
  ASSERT_TRUE(witness.ok()) << witness.status().ToString();
  ASSERT_EQ(witness->orig_pc.size(), witness->program.insns.size());

  // Branch-preserving: the oom conditional survives into the witness, and a
  // synthesized bail stub releases the lock when the branch goes the other
  // way. The stub's instructions carry no original pc.
  bool has_branch = false;
  bool has_unlock_stub = false;
  for (size_t i = 0; i < witness->program.insns.size(); i++) {
    const Insn& insn = witness->program.insns[i];
    if (insn.IsJmp() && !insn.IsUncondJmp() && !insn.IsExit() && !insn.IsCall()) {
      has_branch = true;
    }
    if (insn.IsCall() && insn.imm == kHelperKflexSpinUnlock) {
      EXPECT_EQ(witness->orig_pc[i], SIZE_MAX);
      has_unlock_stub = true;
    }
  }
  EXPECT_TRUE(has_branch);
  EXPECT_TRUE(has_unlock_stub);

  // The witness is a standalone program: it renders to text asm and parses
  // back to the same instructions.
  auto text = ProgramToTextAsm(witness->program);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  auto reparsed = ParseTextProgram(*text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->insns.size(), witness->program.insns.size());

  // And it loads under the audit-replay verifier knob (the leak exit is
  // accepted and recorded in an object table).
  VerifyOptions vo;
  vo.audit_replay = true;
  auto analysis = Verify(witness->program, vo);
  EXPECT_TRUE(analysis.ok()) << analysis.status().ToString();
}

// ---- replay confirmer -------------------------------------------------------

TEST(Replay, LockLeakConfirmedEndToEnd) {
  Program program = LockLeakProgram();
  auto outcomes = AuditAndReplay(program, nullptr);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();

  const AuditOutcome* leak = nullptr;
  for (const AuditOutcome& o : *outcomes) {
    if (o.finding.kind == ObligationKind::kRelease) {
      leak = &o;
    }
  }
  ASSERT_NE(leak, nullptr);
  EXPECT_EQ(leak->replay.verdict, AuditVerdict::kConfirmed) << leak->replay.reason;
  EXPECT_FALSE(leak->witness_asm.empty());
  // The armed replay actually injected the allocation failure that steers
  // onto the leak path, on every engine that loaded.
  for (const EngineReplay& er : leak->replay.engines) {
    ASSERT_TRUE(er.load_ok) << er.engine << ": " << er.load_error;
    EXPECT_GT(er.armed.fault_fails, 0u) << er.engine;
  }
}

TEST(Replay, InfeasibleLeakPruned) {
  Program program = InfeasibleLeakProgram();
  auto outcomes = AuditAndReplay(program, nullptr);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  for (const AuditOutcome& o : *outcomes) {
    if (o.finding.kind == ObligationKind::kRelease) {
      EXPECT_EQ(o.replay.verdict, AuditVerdict::kPruned) << o.replay.reason;
    }
  }
}

TEST(Replay, CleanProgramHasNoConfirmedFindings) {
  Program program = LockCleanProgram();
  auto analysis = Verify(program, VerifyOptions{});
  auto outcomes = AuditAndReplay(program, analysis.ok() ? &*analysis : nullptr);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  for (const AuditOutcome& o : *outcomes) {
    EXPECT_EQ(o.replay.verdict, AuditVerdict::kPruned) << o.finding.message;
  }
}

// Every finding the audit produces on any program must come out of the
// replay classified — CONFIRMED or PRUNED, never anything else. (The enum is
// two-valued; what this actually asserts is that replay never errors out of
// classifying, even for witnesses that fail to load.)
TEST(Replay, SocketLeakConfirmed) {
  Assembler a;
  a.StImm(BPF_W, R10, -8, 0);   // tuple ip = 0
  a.StImm(BPF_H, R10, -4, 0);   // tuple port = 0
  a.Mov(R2, R10);
  a.AddImm(R2, -8);
  a.MovImm(R3, 8);
  a.MovImm(R4, 0);
  a.MovImm(R5, 0);
  a.Call(kHelperSkLookupUdp);
  Assembler::Label out = a.NewLabel();
  a.JmpImm(BPF_JEQ, R0, 0, out);
  a.MovImm(R0, 1);  // BUG: non-null socket never released
  a.Bind(out);
  a.Exit();
  auto p = a.Finish("sk_leak", Hook::kXdp, ExtensionMode::kKflex, 0);
  ASSERT_TRUE(p.ok()) << p.status().ToString();

  auto outcomes = AuditAndReplay(*p, nullptr);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  const AuditOutcome* leak = nullptr;
  for (const AuditOutcome& o : *outcomes) {
    if (o.finding.kind == ObligationKind::kRelease &&
        o.finding.resource == ResourceKind::kSocket) {
      leak = &o;
    }
  }
  ASSERT_NE(leak, nullptr);
  // Baseline: the bound (0, 0, udp) socket resolves, the ref is taken and
  // never released — the object-registry sweep trips without any fault armed.
  EXPECT_EQ(leak->replay.verdict, AuditVerdict::kConfirmed) << leak->replay.reason;
}

}  // namespace
}  // namespace kflex
