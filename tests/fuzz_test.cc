// Soundness fuzzing: the framework's end-to-end safety property.
//
// For randomly generated programs:
//  * KFlex mode: every program the verifier ACCEPTS must, after Kie
//    instrumentation, either run to completion or be cancelled cleanly
//    (unpopulated page / guard zone / terminate). It must NEVER fault with
//    kBadAddress or kSmap — that would mean the range analysis elided a
//    guard for an access that escaped the heap, i.e., a kernel-memory
//    corruption in the real system.
//  * strict eBPF mode: every accepted program must run to completion with no
//    fault at all (classic eBPF soundness).
// The verifier itself must never crash on arbitrary generated input.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "src/base/rng.h"
#include "tests/program_generator.h"
#include "src/ebpf/assembler.h"
#include "src/fault/fault.h"
#include "src/ebpf/helper_ids.h"
#include "src/jit/codegen.h"
#include "src/kernel/kernel.h"
#include "src/runtime/runtime.h"
#include "src/verifier/lint.h"
#include "src/verifier/verifier.h"

namespace kflex {
namespace {

// The shared generator lives in program_generator.h; kHeap is its heap size.
constexpr uint64_t kHeap = kFuzzHeap;

class FuzzSoundness : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSoundness, AcceptedKflexProgramsNeverEscapeTheHeap) {
  Rng rng(0xF00D + static_cast<uint64_t>(GetParam()) * 7919);
  int accepted = 0;
  constexpr int kPrograms = 120;
  for (int n = 0; n < kPrograms; n++) {
    ProgramGenerator gen(rng, /*kflex=*/true);
    Program p = gen.Generate();
    auto lint = RunLint(p, nullptr);  // every fuzz program must lint cleanly
    ASSERT_TRUE(lint.ok()) << lint.status().ToString() << "\n" << ProgramToString(p);
    Runtime runtime{RuntimeOptions{1, 1'000'000'000ULL}};
    LoadOptions lo;
    lo.kie.performance_mode = rng.NextBounded(2) == 0;
    lo.heap_static_bytes = 4096;
    auto id = runtime.Load(p, lo);
    if (!id.ok()) {
      continue;  // rejection is fine; crashes are not
    }
    accepted++;
    for (int run = 0; run < 3; run++) {
      uint8_t ctx[2048];
      for (auto& b : ctx) {
        b = static_cast<uint8_t>(rng.Next());
      }
      InvokeResult r = runtime.Invoke(*id, 0, ctx, sizeof(ctx));
      if (!r.attached) {
        break;  // previously cancelled: unloaded, nothing more to check
      }
      if (r.cancelled) {
        // Only extension-correctness faults are acceptable; kBadAddress /
        // kSmap would mean an elided access escaped the heap.
        ASSERT_TRUE(r.fault_kind == MemFaultKind::kNotPresent ||
                    r.fault_kind == MemFaultKind::kGuardZone ||
                    r.fault_kind == MemFaultKind::kTerminate ||
                    (lo.kie.performance_mode &&
                     (r.fault_kind == MemFaultKind::kSmap ||
                      r.fault_kind == MemFaultKind::kBadAddress)))
            << "program " << n << " run " << run << " fault kind "
            << static_cast<int>(r.fault_kind) << "\n"
            << ProgramToString(p);
      }
    }
  }
  // The generator is acceptance-biased: a healthy fraction must load.
  EXPECT_GT(accepted, kPrograms / 4) << "generator drifted: too few accepted programs";
}

TEST_P(FuzzSoundness, AcceptedEbpfProgramsAlwaysCompleteCleanly) {
  Rng rng(0xBEEF + static_cast<uint64_t>(GetParam()) * 104729);
  int accepted = 0;
  constexpr int kPrograms = 150;
  for (int n = 0; n < kPrograms; n++) {
    ProgramGenerator gen(rng, /*kflex=*/false);
    Program p = gen.Generate();
    auto lint = RunLint(p, nullptr);
    ASSERT_TRUE(lint.ok()) << lint.status().ToString() << "\n" << ProgramToString(p);
    Runtime runtime{RuntimeOptions{1, 1'000'000'000ULL}};
    auto id = runtime.Load(p, LoadOptions{});
    if (!id.ok()) {
      continue;
    }
    accepted++;
    for (int run = 0; run < 3; run++) {
      uint8_t ctx[2048];
      for (auto& b : ctx) {
        b = static_cast<uint8_t>(rng.Next());
      }
      InvokeResult r = runtime.Invoke(*id, 0, ctx, sizeof(ctx));
      ASSERT_FALSE(r.cancelled)
          << "strict eBPF program faulted at runtime:\n" << ProgramToString(p);
      ASSERT_EQ(r.outcome, VmResult::Outcome::kOk);
      ASSERT_LT(r.insns, 100'000u) << "bounded program ran unreasonably long";
    }
  }
  EXPECT_GT(accepted, kPrograms / 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSoundness, ::testing::Range(0, 6));

// Lint findings must never contradict the verifier's verdict on programs
// exercising kernel resources (locks + socket references): when the verifier
// rejects for a provable deadlock or reference leak, the corresponding lint
// pass must produce an error-severity explanation; when the verifier accepts,
// those passes must stay silent (zero false positives).
TEST(FuzzLintConsistency, LintAgreesWithVerifierOnResourceBugs) {
  Rng rng(0xCAFE);
  size_t leaks_explained = 0;
  size_t deadlocks_explained = 0;
  for (int n = 0; n < 200; n++) {
    ProgramGenerator gen(rng, /*kflex=*/true, /*resources=*/true);
    Program p = gen.Generate();
    auto analysis = Verify(p, VerifyOptions{});
    auto lint = RunLint(p, analysis.ok() ? &*analysis : nullptr);
    ASSERT_TRUE(lint.ok()) << lint.status().ToString() << "\n" << ProgramToString(p);
    size_t ref_leak_errors = 0;
    size_t reacquire_errors = 0;
    for (const Finding& f : *lint) {
      if (f.severity != LintSeverity::kError) {
        continue;
      }
      if (f.pass == "ref-leak") {
        ref_leak_errors++;
      }
      if (f.pass == "lock-order" && f.message.find("re-acquired") != std::string::npos) {
        reacquire_errors++;
      }
    }
    if (analysis.ok()) {
      // Accepted program: no provable leak and no provable self-deadlock.
      EXPECT_EQ(ref_leak_errors, 0u)
          << "ref-leak false positive on verified program:\n" << ProgramToString(p);
      EXPECT_EQ(reacquire_errors, 0u)
          << "lock-order false positive on verified program:\n" << ProgramToString(p);
      continue;
    }
    const std::string why = analysis.status().ToString();
    if (why.find("unreleased kernel reference") != std::string::npos) {
      EXPECT_GE(ref_leak_errors, 1u)
          << "verifier found a leak lint missed: " << why << "\n" << ProgramToString(p);
      leaks_explained++;
    }
    if (why.find("deadlock: lock already held") != std::string::npos) {
      EXPECT_GE(reacquire_errors, 1u)
          << "verifier found a deadlock lint missed: " << why << "\n" << ProgramToString(p);
      deadlocks_explained++;
    }
  }
  // The generator must actually exercise both defect classes.
  EXPECT_GT(leaks_explained, 0u) << "generator drifted: no leaky programs produced";
  EXPECT_GT(deadlocks_explained, 0u) << "generator drifted: no deadlocking programs produced";
}

// Lint on REJECTED programs (LintContext.analysis == nullptr): a slice of
// the fuzz corpus is replayed through RunLint with no verifier analysis at
// all — the rejected-program path every pass must survive. Asserts no
// crash, deterministic finding order across repeated runs, and that the
// dedupe step leaves no two findings with identical (pc, severity, message)
// (the contract-release pass deliberately mirrors ref-leak's message text,
// so without dedupe this would fire constantly).
TEST(FuzzLintConsistency, RejectedProgramsLintWithoutAnalysis) {
  Rng rng(0xD1CE);
  size_t rejected = 0;
  for (int n = 0; n < 200; n++) {
    ProgramGenerator gen(rng, /*kflex=*/true, /*resources=*/true);
    Program p = gen.Generate();
    auto analysis = Verify(p, VerifyOptions{});
    if (analysis.ok()) {
      continue;
    }
    rejected++;
    auto lint = RunLint(p, nullptr);
    ASSERT_TRUE(lint.ok()) << lint.status().ToString() << "\n" << ProgramToString(p);
    auto again = RunLint(p, nullptr);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*lint, *again) << "unstable finding order:\n" << ProgramToString(p);
    for (size_t i = 0; i + 1 < lint->size(); i++) {
      const Finding& a = (*lint)[i];
      for (size_t j = i + 1; j < lint->size(); j++) {
        const Finding& b = (*lint)[j];
        EXPECT_FALSE(a.pc == b.pc && a.severity == b.severity && a.message == b.message)
            << "duplicate finding survived dedupe ([" << a.pass << "] vs [" << b.pass
            << "] at pc " << a.pc << "): " << a.message << "\n"
            << ProgramToString(p);
      }
    }
  }
  EXPECT_GT(rejected, 20u) << "generator drifted: corpus slice has too few rejected programs";
}

// The concurrency passes (lockset, atomicity, lock-cycle) replayed alone over
// the fuzz corpus — accepted and rejected programs alike, with and without
// verifier analysis. Asserts no crash, that only the selected passes emit
// findings with the documented severity mapping (map-value races are errors,
// lock cycles are warnings; heap-class findings are certificate-only and must
// never appear as lint findings), deterministic finding order across repeated
// runs, and that the full-registry dedupe contract still holds with the
// concurrency passes in the mix.
TEST(FuzzLintConcurrency, ConcurrencyPassesSurviveTheCorpus) {
  Rng rng(0x10C5);
  LintRunOptions options;
  options.passes = {"lockset", "atomicity", "lock-cycle"};
  size_t programs_with_findings = 0;
  for (int n = 0; n < 300; n++) {
    const bool resources = (n % 2) == 0;
    ProgramGenerator gen(rng, /*kflex=*/true, resources);
    Program p = gen.Generate();
    auto analysis = Verify(p, VerifyOptions{});
    const Analysis* analysis_ptr = analysis.ok() ? &*analysis : nullptr;
    auto lint = RunLint(p, analysis_ptr, options);
    ASSERT_TRUE(lint.ok()) << lint.status().ToString() << "\n" << ProgramToString(p);
    auto again = RunLint(p, analysis_ptr, options);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*lint, *again) << "unstable finding order:\n" << ProgramToString(p);
    if (!lint->empty()) {
      programs_with_findings++;
    }
    for (const Finding& f : *lint) {
      EXPECT_TRUE(f.pass == "lockset" || f.pass == "atomicity" || f.pass == "lock-cycle")
          << "unselected pass '" << f.pass << "' emitted a finding:\n" << ProgramToString(p);
      if (f.pass == "lock-cycle") {
        EXPECT_EQ(f.severity, LintSeverity::kWarning) << ProgramToString(p);
      } else {
        EXPECT_EQ(f.severity, LintSeverity::kError)
            << "[" << f.pass << "] " << f.message << "\n" << ProgramToString(p);
        EXPECT_NE(f.message.find("map"), std::string::npos)
            << "heap-class finding leaked into lint (certificate-only contract): ["
            << f.pass << "] " << f.message << "\n" << ProgramToString(p);
      }
    }
    // Full registry with the concurrency passes in the mix: dedupe must leave
    // no two findings with identical (pc, severity, message).
    auto all = RunLint(p, analysis_ptr);
    ASSERT_TRUE(all.ok()) << all.status().ToString() << "\n" << ProgramToString(p);
    for (size_t i = 0; i + 1 < all->size(); i++) {
      const Finding& a = (*all)[i];
      for (size_t j = i + 1; j < all->size(); j++) {
        const Finding& b = (*all)[j];
        EXPECT_FALSE(a.pc == b.pc && a.severity == b.severity && a.message == b.message)
            << "duplicate finding survived dedupe ([" << a.pass << "] vs [" << b.pass
            << "] at pc " << a.pc << "): " << a.message << "\n"
            << ProgramToString(p);
      }
    }
  }
}

// ---- Differential fuzzing: optimizer + JIT equivalence ----------------------
//
// Every generated program is loaded three ways — reference interpreter
// (optimizer off), optimized interpreter, and optimized JIT — and run on
// identical context bytes and heap seeds. Exit verdicts, outcome kinds, full
// heap contents, and helper-call traces (id, return value) must match
// exactly: the optimizer may only remove work, and the JIT may only change
// execution speed, never behavior. The JIT runs the same instrumented
// stream as the optimized interpreter, so its instruction counts must also
// match bit for bit (the optimizer-off reference executes a different
// stream and is only compared on observable behavior).

// Replaces the wall-clock and shared-thread-local core helpers with
// per-runtime deterministic versions so both pipelines observe the same
// helper return values.
void MakeHelpersDeterministic(Runtime& rt) {
  auto clock = std::make_shared<uint64_t>(0);
  rt.helpers().Register(
      kHelperKtimeGetNs,
      [clock](VmEnv&, const uint64_t*) { return HelperOutcome{*clock += 1000, false, false}; },
      /*virtual_cost=*/4);
  auto prng = std::make_shared<Rng>(0x5EEDu);
  rt.helpers().Register(
      kHelperGetPrandomU32,
      [prng](VmEnv&, const uint64_t*) {
        return HelperOutcome{prng->Next() & 0xFFFFFFFFULL, false, false};
      },
      /*virtual_cost=*/4);
}

TEST(FuzzDifferential, OptimizedPipelineIsObservationallyEquivalent) {
  Rng rng(0x0B7C0DEULL);
  int compared = 0;
  constexpr int kPrograms = 1100;
  for (int n = 0; n < kPrograms; n++) {
    bool kflex = n % 4 != 3;  // mostly KFlex, some strict eBPF
    ProgramGenerator gen(rng, kflex, /*resources=*/false, /*helper_calls=*/true);
    Program p = gen.Generate();

    RuntimeOptions ro{1, 1'000'000'000ULL};
    Runtime rt_opt{ro};
    Runtime rt_ref{ro};
    Runtime rt_jit{ro};
    MakeHelpersDeterministic(rt_opt);
    MakeHelpersDeterministic(rt_ref);
    MakeHelpersDeterministic(rt_jit);
    LoadOptions lo;
    lo.heap_static_bytes = 4096;
    LoadOptions lo_ref = lo;
    lo_ref.optimize = false;
    LoadOptions lo_jit = lo;
    lo_jit.engine = ExecEngine::kJit;
    const bool jit = JitHostSupported();
    auto id_opt = rt_opt.Load(p, lo);
    auto id_ref = rt_ref.Load(p, lo_ref);
    auto id_jit = rt_jit.Load(p, lo_jit);
    // Neither the optimizer nor the engine choice may change whether a
    // program loads.
    ASSERT_EQ(id_opt.ok(), id_ref.ok()) << ProgramToString(p);
    ASSERT_EQ(id_opt.ok(), id_jit.ok()) << ProgramToString(p);
    if (!id_opt.ok()) {
      continue;
    }
    if (jit) {
      // The generator emits only constructs the template JIT supports; a
      // fallback here is a compiler regression, not an expected path.
      ASSERT_EQ(rt_jit.engine_info(*id_jit).used, ExecEngine::kJit)
          << rt_jit.engine_info(*id_jit).fallback_reason << "\n" << ProgramToString(p);
    }
    compared++;
    for (int run = 0; run < 2; run++) {
      uint8_t ctx_opt[2048];
      for (auto& b : ctx_opt) {
        b = static_cast<uint8_t>(rng.Next());
      }
      uint8_t ctx_ref[2048];
      std::memcpy(ctx_ref, ctx_opt, sizeof(ctx_ref));
      uint8_t ctx_jit[2048];
      std::memcpy(ctx_jit, ctx_opt, sizeof(ctx_jit));

      std::vector<std::pair<int32_t, uint64_t>> trace_opt, trace_ref, trace_jit;
      InvokeResult a = rt_opt.Invoke(*id_opt, 0, ctx_opt, sizeof(ctx_opt), &trace_opt);
      InvokeResult b = rt_ref.Invoke(*id_ref, 0, ctx_ref, sizeof(ctx_ref), &trace_ref);
      InvokeResult c = rt_jit.Invoke(*id_jit, 0, ctx_jit, sizeof(ctx_jit), &trace_jit);
      ASSERT_EQ(a.attached, b.attached) << "program " << n << "\n" << ProgramToString(p);
      ASSERT_EQ(a.attached, c.attached) << "program " << n << "\n" << ProgramToString(p);
      if (!a.attached) {
        break;
      }
      ASSERT_EQ(a.cancelled, b.cancelled) << "program " << n << "\n" << ProgramToString(p);
      ASSERT_EQ(a.outcome, b.outcome) << "program " << n << "\n" << ProgramToString(p);
      ASSERT_EQ(a.verdict, b.verdict) << "program " << n << "\n" << ProgramToString(p);
      ASSERT_EQ(trace_opt, trace_ref)
          << "helper traces diverged, program " << n << "\n" << ProgramToString(p);
      // JIT vs optimized interpreter: same instruction stream, so everything
      // must agree — including fault pcs and exact instruction counts.
      ASSERT_EQ(a.cancelled, c.cancelled) << "program " << n << "\n" << ProgramToString(p);
      ASSERT_EQ(a.outcome, c.outcome) << "program " << n << "\n" << ProgramToString(p);
      ASSERT_EQ(a.verdict, c.verdict) << "program " << n << "\n" << ProgramToString(p);
      ASSERT_EQ(a.fault_pc, c.fault_pc) << "program " << n << "\n" << ProgramToString(p);
      ASSERT_EQ(a.fault_kind, c.fault_kind) << "program " << n << "\n" << ProgramToString(p);
      ASSERT_EQ(a.insns, c.insns)
          << "instruction counts diverged, program " << n << "\n" << ProgramToString(p);
      ASSERT_EQ(a.instr_insns, c.instr_insns)
          << "instrumented counts diverged, program " << n << "\n" << ProgramToString(p);
      ASSERT_EQ(trace_opt, trace_jit)
          << "JIT helper trace diverged, program " << n << "\n" << ProgramToString(p);
      if (rt_opt.heap(*id_opt) != nullptr) {
        ASSERT_EQ(0, std::memcmp(rt_opt.heap(*id_opt)->HostAt(0),
                                 rt_ref.heap(*id_ref)->HostAt(0), kHeap))
            << "heap contents diverged, program " << n << "\n" << ProgramToString(p);
        ASSERT_EQ(0, std::memcmp(rt_opt.heap(*id_opt)->HostAt(0),
                                 rt_jit.heap(*id_jit)->HostAt(0), kHeap))
            << "JIT heap contents diverged, program " << n << "\n" << ProgramToString(p);
      }
    }
  }
  // The generator is acceptance-biased: most programs must actually compare.
  EXPECT_GT(compared, kPrograms / 4) << "generator drifted: too few accepted programs";
}

// ---- Chaos mode: seeded fault injection over the corpus ---------------------
//
// A slice of the differential corpus is run twice on identical context
// bytes: a reference run with the fault registry disarmed and a chaos run
// with seeded probabilistic faults armed on the pager and helper points.
// The schedules are pure functions of (seed, hit index), so each program's
// chaos behaviour is exactly reproducible from the --fault specs printed on
// failure. If the chaos run happened to inject nothing (fail-count delta is
// zero) it must be observationally identical to the reference — verdict,
// outcome, helper trace, and full heap contents. If faults did fire, the
// run must either complete cleanly or cancel with a documented fault kind,
// and the post-fault invariant sweep must be green. Never a diverging heap
// on success, never an unclean error.
TEST(FuzzChaos, SeededFaultsMatchVerdictOrFailCleanly) {
  Rng rng(0xC7A05);
  int injected = 0;
  int equivalent = 0;
  constexpr int kPrograms = 150;
  for (int n = 0; n < kPrograms; n++) {
    ProgramGenerator gen(rng, /*kflex=*/true, /*resources=*/false, /*helper_calls=*/true);
    Program p = gen.Generate();
    RuntimeOptions ro;
    ro.num_cpus = 1;
    Runtime rt_ref{ro};
    Runtime rt_chaos{ro};
    MakeHelpersDeterministic(rt_ref);
    MakeHelpersDeterministic(rt_chaos);
    LoadOptions lo;
    lo.heap_static_bytes = 4096;
    auto id_ref = rt_ref.Load(p, lo);
    auto id_chaos = rt_chaos.Load(p, lo);
    ASSERT_EQ(id_ref.ok(), id_chaos.ok()) << ProgramToString(p);
    if (!id_ref.ok()) {
      continue;
    }

    uint8_t ctx_ref[2048];
    for (auto& byte : ctx_ref) {
      byte = static_cast<uint8_t>(rng.Next());
    }
    uint8_t ctx_chaos[2048];
    std::memcpy(ctx_chaos, ctx_ref, sizeof(ctx_chaos));

    // The reference run is the baseline whatever it does: generated programs
    // may legitimately self-cancel (guard-zone heap arithmetic), and an
    // injection-free chaos run must mirror that exactly.
    std::vector<std::pair<int32_t, uint64_t>> trace_ref, trace_chaos;
    InvokeResult a = rt_ref.Invoke(*id_ref, 0, ctx_ref, sizeof(ctx_ref), &trace_ref);

    const uint64_t seed = 0x9E3779B9ULL + static_cast<uint64_t>(n) * 3;
    const std::string specs[] = {
        "heap.pagein:prob=0.01,seed=" + std::to_string(seed),
        "heap.guard:prob=0.01,seed=" + std::to_string(seed + 1),
        "helper.ret_err:prob=0.05,seed=" + std::to_string(seed + 2),
    };
    const std::string replay = "program " + std::to_string(n) + " --fault=" + specs[0] +
                               " --fault=" + specs[1] + " --fault=" + specs[2];
    ScopedFaultInjection faults{specs[0], specs[1], specs[2]};  // arming resets hit counters
    InvokeResult b = rt_chaos.Invoke(*id_chaos, 0, ctx_chaos, sizeof(ctx_chaos), &trace_chaos);

    uint64_t fired = 0;
    for (const char* point : {"heap.pagein", "heap.guard", "helper.ret_err"}) {
      fired += FaultRegistry::Instance().Find(point)->fails();
    }
    if (fired == 0) {
      // Nothing injected: the armed-but-silent run may not diverge at all.
      equivalent++;
      ASSERT_EQ(a.cancelled, b.cancelled) << replay << "\n" << ProgramToString(p);
      ASSERT_EQ(a.outcome, b.outcome) << replay << "\n" << ProgramToString(p);
      ASSERT_EQ(a.fault_kind, b.fault_kind) << replay << "\n" << ProgramToString(p);
      ASSERT_EQ(a.verdict, b.verdict) << replay << "\n" << ProgramToString(p);
      ASSERT_EQ(trace_ref, trace_chaos) << replay << "\n" << ProgramToString(p);
      if (rt_ref.heap(*id_ref) != nullptr && rt_chaos.heap(*id_chaos) != nullptr) {
        ASSERT_EQ(0, std::memcmp(rt_ref.heap(*id_ref)->HostAt(0),
                                 rt_chaos.heap(*id_chaos)->HostAt(0), kHeap))
            << "heap diverged without any injected fault, " << replay << "\n"
            << ProgramToString(p);
      }
    } else {
      // Faults fired: the run may degrade, but only along documented paths.
      injected++;
      if (b.cancelled) {
        ASSERT_TRUE(b.fault_kind == MemFaultKind::kNotPresent ||
                    b.fault_kind == MemFaultKind::kGuardZone ||
                    b.fault_kind == MemFaultKind::kTerminate)
            << "unclean injected fault kind " << static_cast<int>(b.fault_kind) << ", "
            << replay << "\n" << ProgramToString(p);
      } else {
        ASSERT_EQ(b.outcome, VmResult::Outcome::kOk) << replay << "\n" << ProgramToString(p);
      }
      InvariantReport sweep = rt_chaos.SweepInvariants(*id_chaos);
      ASSERT_TRUE(sweep.ok()) << sweep.ToString() << "\n" << replay << "\n"
                              << ProgramToString(p);
    }
  }
  // The slice must exercise both regimes, or the probabilities have drifted.
  EXPECT_GT(injected, 0) << "chaos corpus never injected a fault";
  EXPECT_GT(equivalent, 0) << "chaos corpus never produced an injection-free run";
}

// The verifier must reject (not crash on) byte-level garbage programs.
TEST(FuzzRobustness, GarbageBytecodeIsRejectedNotCrashed) {
  Rng rng(0xDEAD);
  for (int n = 0; n < 3000; n++) {
    Program p;
    p.mode = rng.NextBounded(2) == 0 ? ExtensionMode::kKflex : ExtensionMode::kEbpf;
    p.heap_size = p.mode == ExtensionMode::kKflex ? kHeap : 0;
    size_t len = 1 + rng.NextBounded(24);
    for (size_t i = 0; i < len; i++) {
      Insn insn;
      insn.opcode = static_cast<uint8_t>(rng.Next());
      insn.dst = static_cast<uint8_t>(rng.NextBounded(16));
      insn.src = static_cast<uint8_t>(rng.NextBounded(16));
      insn.off = static_cast<int16_t>(rng.Next());
      insn.imm = static_cast<int32_t>(rng.Next());
      p.insns.push_back(insn);
    }
    auto r = Verify(p, VerifyOptions{});
    // Garbage may occasionally be valid; it must never crash, and if it is
    // accepted it must also instrument and execute without host faults.
    if (r.ok()) {
      auto ip = Instrument(p, *r, HeapLayout::ForSize(kHeap), KieOptions{});
      ASSERT_TRUE(ip.ok());
      // The JIT must also survive accepted garbage: compile or fall back,
      // never crash. (Unsupported constructs fall back to the interpreter.)
      JitCompileResult jr = JitCompile(*ip, JitOptions{});
      if (jr.program == nullptr) {
        ASSERT_FALSE(jr.fallback_reason.empty());
      }
    }
  }
}

}  // namespace
}  // namespace kflex
