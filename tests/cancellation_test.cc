// Extension cancellations (§3.3, §4.3): terminate-slot arming, C1/C2
// cancellation points, object-table-driven resource release, kernel
// quiescence after cancellation, the watchdog, verdict callbacks, and
// extension-wide cancellation scope.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/kernel/kernel.h"
#include "src/kernel/packet.h"
#include "src/runtime/spinlock.h"

namespace kflex {
namespace {

constexpr uint64_t kHeapSize = 1 << 20;

Program MustBuild(Assembler& a, Hook hook = Hook::kXdp) {
  auto p = a.Finish("t", hook, ExtensionMode::kKflex, kHeapSize);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

// An extension that loops forever walking nothing.
Program InfiniteLoopProgram() {
  Assembler a;
  a.MovImm(R0, 0);
  auto head = a.NewLabel();
  a.Bind(head);
  a.AddImm(R0, 1);
  a.Jmp(head);
  return MustBuild(a);
}

TEST(Cancellation, PreArmedTerminateCancelsLoopImmediately) {
  MockKernel kernel;
  auto id = kernel.runtime().Load(InfiniteLoopProgram(), LoadOptions{});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(kernel.Attach(*id).ok());

  kernel.runtime().Cancel(*id);  // arm before invoking
  KvPacket pkt;
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(r.verdict, kXdpPass);
  EXPECT_TRUE(kernel.runtime().IsUnloaded(*id));
  // A few instructions only: the first terminate load faulted.
  EXPECT_LT(r.insns, 64u);
}

TEST(Cancellation, CorrectLoopRunsToCompletionWithTerminateLoads) {
  MockKernel kernel;
  Assembler a;
  a.MovImm(R2, 1000);
  a.Ldx(BPF_DW, R3, R1, 0);  // unknown: loop is unprovable -> gets Cps
  a.MovImm(R0, 0);
  auto loop = a.LoopBegin();
  a.LoopBreakIfImm(loop, BPF_JEQ, R2, 0);
  a.AddImm(R0, 1);
  a.SubImm(R2, 1);
  a.Add(R2, R3);  // R3 == 0 at runtime; verifier cannot know
  a.LoopEnd(loop);
  a.Exit();
  auto id = kernel.runtime().Load(MustBuild(a), LoadOptions{});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(kernel.Attach(*id).ok());
  ASSERT_FALSE(kernel.runtime().instrumented(*id).terminate_load_pcs.empty());

  KvPacket pkt;  // ctx[0..8] == 0
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  EXPECT_FALSE(r.cancelled);
  EXPECT_EQ(r.verdict, 1000);
}

TEST(Cancellation, WatchdogCancelsRunawayExtension) {
  RuntimeOptions opts;
  opts.num_cpus = 2;
  opts.quantum_ns = 20'000'000;  // 20 ms
  MockKernel kernel{opts};
  auto id = kernel.runtime().Load(InfiniteLoopProgram(), LoadOptions{});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(kernel.Attach(*id).ok());
  kernel.runtime().StartWatchdog();

  KvPacket pkt;
  auto start = std::chrono::steady_clock::now();
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  auto elapsed = std::chrono::steady_clock::now() - start;
  kernel.runtime().StopWatchdog();

  EXPECT_TRUE(r.cancelled);
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 15);
  EXPECT_TRUE(kernel.runtime().IsUnloaded(*id));
}

// The Listing-1 shape: acquire a socket, loop while holding it; cancellation
// must release the socket reference and restore quiescence.
TEST(Cancellation, ReleasesAcquiredSocketViaObjectTable) {
  MockKernel kernel;
  kernel.sockets().Bind(0x0A000001, 7000, kProtoUdp);

  Assembler a;
  a.StImm(BPF_W, R10, -16, 0x0A000001);
  a.StImm(BPF_W, R10, -12, 7000);
  a.Mov(R2, R10);
  a.AddImm(R2, -16);
  a.MovImm(R3, 8);
  a.MovImm(R4, 0);
  a.MovImm(R5, 0);
  a.Call(kHelperSkLookupUdp);
  auto iff = a.IfImm(BPF_JNE, R0, 0);
  a.Mov(R6, R0);
  a.MovImm(R0, 0);
  auto head = a.NewLabel();
  a.Bind(head);
  a.AddImm(R0, 1);  // spin forever holding the socket
  a.Jmp(head);
  a.Else(iff);
  a.MovImm(R0, 0);
  a.EndIf(iff);
  a.Exit();
  auto id = kernel.runtime().Load(MustBuild(a), LoadOptions{});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(kernel.Attach(*id).ok());

  kernel.runtime().Cancel(*id);
  KvPacket pkt;
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  EXPECT_TRUE(r.cancelled);
  EXPECT_TRUE(kernel.Quiescent()) << "socket reference leaked on cancellation";
  EXPECT_EQ(kernel.sockets().TotalExtraRefs(), 0);
  auto stats = kernel.runtime().GetStats(*id);
  EXPECT_EQ(stats.cancellations, 1u);
  EXPECT_EQ(stats.resources_released_on_cancel, 1u);
}

TEST(Cancellation, ReleasesHeldLockViaObjectTable) {
  MockKernel kernel;
  Assembler a;
  a.LoadHeapAddr(R1, 64);
  a.Call(kHelperKflexSpinLock);
  a.MovImm(R0, 0);
  auto head = a.NewLabel();
  a.Bind(head);
  a.AddImm(R0, 1);
  a.Jmp(head);
  // Unreachable unlock keeps this listing honest about intent; verifier
  // never reaches exit so no leak is reported.
  auto id = kernel.runtime().Load(MustBuild(a), LoadOptions{});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(kernel.Attach(*id).ok());

  kernel.runtime().Cancel(*id);
  KvPacket pkt;
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  EXPECT_TRUE(r.cancelled);
  EXPECT_FALSE(SpinLockOps::IsHeld(kernel.runtime().heap(*id)->HostAt(64)))
      << "lock must be force-released on cancellation";
}

TEST(Cancellation, DeadlockedWaiterIsCancelled) {
  MockKernel kernel;
  Assembler a;
  a.LoadHeapAddr(R1, 64);
  a.Call(kHelperKflexSpinLock);
  a.LoadHeapAddr(R1, 64);
  a.Call(kHelperKflexSpinUnlock);
  a.MovImm(R0, 77);
  a.Exit();
  auto id = kernel.runtime().Load(MustBuild(a), LoadOptions{});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(kernel.Attach(*id).ok());

  // A non-cooperative user-space thread holds the lock and never releases.
  SpinLockOps::Acquire(kernel.runtime().heap(*id)->HostAt(64), SpinLockOps::kUserOwner,
                       nullptr);
  std::thread canceller([&kernel, id] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    kernel.runtime().Cancel(*id);
  });
  KvPacket pkt;
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  canceller.join();
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(r.outcome, VmResult::Outcome::kHelperCancel);
  // The user still holds the lock (it was never the extension's).
  EXPECT_TRUE(SpinLockOps::IsHeld(kernel.runtime().heap(*id)->HostAt(64)));
}

TEST(Cancellation, VerdictCallbackAdjustsReturn) {
  MockKernel kernel;
  auto id = kernel.runtime().Load(InfiniteLoopProgram(), LoadOptions{});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(kernel.Attach(*id).ok());
  kernel.runtime().SetCancellationCallback(*id, [](int64_t def) { return def + 100; });
  kernel.runtime().Cancel(*id);
  KvPacket pkt;
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(r.verdict, kXdpPass + 100);
}

TEST(Cancellation, LsmHookDeniesByDefault) {
  MockKernel kernel;
  Assembler a;
  a.MovImm(R0, 0);
  auto head = a.NewLabel();
  a.Bind(head);
  a.AddImm(R0, 1);
  a.Jmp(head);
  auto p = a.Finish("lsm", Hook::kLsm, ExtensionMode::kKflex, kHeapSize);
  ASSERT_TRUE(p.ok());
  VerifyOptions vo;
  auto id = kernel.runtime().Load(*p, LoadOptions{});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(kernel.Attach(*id).ok());
  kernel.runtime().Cancel(*id);
  uint8_t ctx[64] = {0};
  InvokeResult r = kernel.Deliver(Hook::kLsm, 0, ctx, sizeof(ctx));
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(r.verdict, -1);  // deny by default
}

TEST(Cancellation, UnloadedExtensionStopsHandlingButHeapSurvives) {
  MockKernel kernel;
  auto id = kernel.runtime().Load(InfiniteLoopProgram(), LoadOptions{});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(kernel.Attach(*id).ok());
  kernel.runtime().Cancel(*id);
  KvPacket pkt;
  kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  ASSERT_TRUE(kernel.runtime().IsUnloaded(*id));

  // Subsequent deliveries fall through to user space (default verdict).
  InvokeResult r2 = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  EXPECT_FALSE(r2.attached);
  EXPECT_EQ(r2.verdict, kXdpPass);
  // The heap is preserved for the user-space application (§3.4).
  EXPECT_NE(kernel.runtime().heap(*id), nullptr);
}

TEST(Cancellation, ResetRearmsExtension) {
  MockKernel kernel;
  auto id = kernel.runtime().Load(InfiniteLoopProgram(), LoadOptions{});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(kernel.Attach(*id).ok());
  kernel.runtime().Cancel(*id);
  KvPacket pkt;
  kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  ASSERT_TRUE(kernel.runtime().IsUnloaded(*id));
  kernel.runtime().Reset(*id);
  EXPECT_FALSE(kernel.runtime().IsUnloaded(*id));
  kernel.runtime().Cancel(*id);
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  EXPECT_TRUE(r.cancelled);
  auto stats = kernel.runtime().GetStats(*id);
  EXPECT_EQ(stats.cancellations, 2u);
}

TEST(ClockSampledCancellation, QuantumCancelsRunawayWithoutWatchdog) {
  RuntimeOptions opts;
  opts.num_cpus = 1;
  opts.fuel_quantum_insns = 10'000;
  MockKernel kernel{opts};
  Program p = InfiniteLoopProgram();
  LoadOptions lo;
  lo.kie.cancellation_mode = CancellationMode::kClockSampled;
  auto id = kernel.runtime().Load(p, lo);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(kernel.Attach(*id).ok());

  // No watchdog, no Cancel(): the back-edge clock sample trips on its own.
  KvPacket pkt;
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(r.fault_kind, MemFaultKind::kTerminate);
  EXPECT_GT(r.insns, 9'000u);
  EXPECT_LT(r.insns, 12'000u);  // recovery within ~one quantum
  EXPECT_TRUE(kernel.runtime().IsUnloaded(*id));
}

TEST(ClockSampledCancellation, ReleasesResourcesViaObjectTable) {
  RuntimeOptions opts;
  opts.num_cpus = 1;
  opts.fuel_quantum_insns = 5'000;
  MockKernel kernel{opts};
  kernel.sockets().Bind(0x0A000001, 7000, kProtoUdp);

  Assembler a;
  a.StImm(BPF_W, R10, -16, 0x0A000001);
  a.StImm(BPF_W, R10, -12, 7000);
  a.Mov(R2, R10);
  a.AddImm(R2, -16);
  a.MovImm(R3, 8);
  a.MovImm(R4, 0);
  a.MovImm(R5, 0);
  a.Call(kHelperSkLookupUdp);
  auto iff = a.IfImm(BPF_JNE, R0, 0);
  a.Mov(R6, R0);
  a.MovImm(R0, 0);
  auto head = a.NewLabel();
  a.Bind(head);
  a.AddImm(R0, 1);
  a.Jmp(head);
  a.Else(iff);
  a.MovImm(R0, 0);
  a.EndIf(iff);
  a.Exit();
  LoadOptions lo;
  lo.kie.cancellation_mode = CancellationMode::kClockSampled;
  auto id = kernel.runtime().Load(MustBuild(a), lo);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(kernel.Attach(*id).ok());

  KvPacket pkt;
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  EXPECT_TRUE(r.cancelled);
  EXPECT_TRUE(kernel.Quiescent()) << "socket must be released at the clock-sampled Cp";
}

TEST(ClockSampledCancellation, CorrectExtensionsUnaffected) {
  RuntimeOptions opts;
  opts.num_cpus = 1;
  opts.fuel_quantum_insns = 100'000;
  MockKernel kernel{opts};
  Assembler a;
  a.Ldx(BPF_DW, R2, R1, 0);
  a.MovImm(R0, 0);
  auto loop = a.LoopBegin();
  a.LoopBreakIfImm(loop, BPF_JEQ, R2, 0);
  a.AddImm(R0, 1);
  a.SubImm(R2, 1);
  a.LoopEnd(loop);
  a.Exit();
  LoadOptions lo;
  lo.kie.cancellation_mode = CancellationMode::kClockSampled;
  auto id = kernel.runtime().Load(MustBuild(a), lo);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(kernel.Attach(*id).ok());
  KvPacket pkt;
  uint64_t n = 500;
  std::memcpy(pkt.data(), &n, 8);
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  EXPECT_FALSE(r.cancelled);
  EXPECT_EQ(r.verdict, 500);
}

}  // namespace
}  // namespace kflex
