// Concurrency-safety end-to-end tests (docs/concurrency.md): the shard-safety
// certificate computed at load, the lockset/atomicity/lock-cycle lint
// front ends, the cross-extension lock-order audit, and the dynamic side of
// the story under ThreadSanitizer (the `tsan` CMake preset builds this
// binary with -fsanitize=thread and runs the `concurrency` ctest label):
//
//  * a program the analysis certifies race-free (atomic increments) or
//    lock-protected (spin-lock regions) is invoked from multiple threads on
//    one shared MockKernel and must count exactly and stay TSan-clean;
//  * the seeded-racy program (plain load/add/store on a shared heap word) is
//    flagged statically — certificate serial-only — and, when forced to run
//    multithreaded anyway, is caught by TSan: the racy scenario runs in a
//    subprocess (KFLEX_CONCURRENCY_RACY_CHILD=1 re-exec) whose exit code is
//    nonzero exactly when TSan instrumented the build.
//
// Interpreter engines only: JIT-emitted native code is not
// TSan-instrumented, so its guest memory accesses would be invisible to the
// race detector.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/kernel/kernel.h"
#include "src/kernel/packet.h"
#include "src/obs/obs.h"
#include "src/runtime/spinlock.h"
#include "src/verifier/concurrency.h"
#include "src/verifier/lint.h"

namespace kflex {
namespace {

constexpr uint64_t kHeapSize = 1 << 20;
constexpr int kThreads = 4;
constexpr int kItersPerThread = 200;
// Shared heap words, past the reserved metadata at the front of the heap.
constexpr uint64_t kLockOff = 64;
constexpr uint64_t kLockBOff = 128;
constexpr uint64_t kCounterOff = 72;

Program MustBuild(Assembler& a, const char* name, Hook hook = Hook::kXdp,
                  uint64_t heap = kHeapSize) {
  auto p = a.Finish(name, hook, ExtensionMode::kKflex, heap);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

// counter += 1 via the atomic fetch-add instruction: race-free by
// construction, no lock needed.
Program AtomicCounterProgram() {
  Assembler a;
  a.LoadHeapAddr(R2, kCounterOff);
  a.MovImm(R3, 1);
  a.AtomicAdd(BPF_DW, R2, 0, R3);
  a.MovImm(R0, 0);
  a.Exit();
  return MustBuild(a, "atomic_counter");
}

// lock; counter++ (plain load/add/store); unlock: every shared access inside
// a lock region.
Program LockedCounterProgram() {
  Assembler a;
  a.LoadHeapAddr(R1, kLockOff);
  a.Call(kHelperKflexSpinLock);
  a.LoadHeapAddr(R2, kCounterOff);
  a.Ldx(BPF_DW, R3, R2, 0);
  a.AddImm(R3, 1);
  a.Stx(BPF_DW, R2, 0, R3);
  a.LoadHeapAddr(R1, kLockOff);
  a.Call(kHelperKflexSpinUnlock);
  a.MovImm(R0, 0);
  a.Exit();
  return MustBuild(a, "locked_counter");
}

// counter++ with no lock and no atomic: the seeded race.
Program RacyCounterProgram() {
  Assembler a;
  a.LoadHeapAddr(R2, kCounterOff);
  a.Ldx(BPF_DW, R3, R2, 0);
  a.AddImm(R3, 1);
  a.Stx(BPF_DW, R2, 0, R3);
  a.MovImm(R0, 0);
  a.Exit();
  return MustBuild(a, "racy_counter");
}

// Acquires `first` then `second` (both released in reverse order): one half
// of an AB/BA cross-extension deadlock pair.
Program TwoLockProgram(const char* name, uint64_t first, uint64_t second) {
  Assembler a;
  a.LoadHeapAddr(R1, first);
  a.Call(kHelperKflexSpinLock);
  a.LoadHeapAddr(R1, second);
  a.Call(kHelperKflexSpinLock);
  a.LoadHeapAddr(R1, second);
  a.Call(kHelperKflexSpinUnlock);
  a.LoadHeapAddr(R1, first);
  a.Call(kHelperKflexSpinUnlock);
  a.MovImm(R0, 0);
  a.Exit();
  return MustBuild(a, name);
}

ExtensionId MustLoad(MockKernel& kernel, const Program& p, const LoadOptions& extra = {}) {
  LoadOptions lo = extra;
  lo.heap_static_bytes = 64;
  auto id = kernel.runtime().Load(p, lo);
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  return id.ok() ? *id : 0;
}

uint64_t ReadHeapWord(Runtime& runtime, ExtensionId id, uint64_t off) {
  uint64_t v = 0;
  std::memcpy(&v, runtime.heap(id)->HostAt(off), sizeof(v));
  return v;
}

// Invokes the attached extension kItersPerThread times from kThreads
// threads, one per CPU. A warm-up invocation first faults in the touched
// heap pages so the threads race only on the extension's own accesses, not
// on demand paging.
void HammerFromThreads(MockKernel& kernel, Hook hook) {
  KvPacket warmup;
  kernel.Deliver(hook, 0, warmup.data(), warmup.size());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&kernel, hook, t] {
      KvPacket pkt;
      for (int i = 0; i < kItersPerThread; i++) {
        kernel.Deliver(hook, t, pkt.data(), pkt.size());
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
}

TEST(Concurrency, AtomicCounterIsCertifiedRaceFreeAndCountsExactly) {
  MockKernel kernel{RuntimeOptions{kThreads}};
  ExtensionId id = MustLoad(kernel, AtomicCounterProgram());
  ASSERT_NE(id, 0u);

  const ConcurrencyReport& report = kernel.runtime().instrumented(id).concurrency;
  EXPECT_EQ(report.safety, ShardSafety::kRaceFree);
  EXPECT_EQ(kernel.runtime().engine_info(id).shard_safety, ShardSafety::kRaceFree);
  EXPECT_EQ(report.atomic_accesses, 1u);
  EXPECT_EQ(report.unprotected_heap_accesses, 0u);
  EXPECT_TRUE(report.findings.empty());

  ASSERT_TRUE(kernel.Attach(id).ok());
  HammerFromThreads(kernel, Hook::kXdp);
  EXPECT_EQ(ReadHeapWord(kernel.runtime(), id, kCounterOff),
            static_cast<uint64_t>(kThreads) * kItersPerThread + 1);  // +1 warm-up
}

TEST(Concurrency, LockedCounterIsCertifiedLockProtectedAndCountsExactly) {
  MockKernel kernel{RuntimeOptions{kThreads}};
  ExtensionId id = MustLoad(kernel, LockedCounterProgram());
  ASSERT_NE(id, 0u);

  const ConcurrencyReport& report = kernel.runtime().instrumented(id).concurrency;
  EXPECT_EQ(report.safety, ShardSafety::kLockProtected);
  EXPECT_EQ(kernel.runtime().engine_info(id).shard_safety, ShardSafety::kLockProtected);
  EXPECT_GE(report.locked_accesses, 2u);  // the load and the store
  EXPECT_EQ(report.unprotected_heap_accesses, 0u);
  EXPECT_TRUE(report.findings.empty());

  ASSERT_TRUE(kernel.Attach(id).ok());
  HammerFromThreads(kernel, Hook::kXdp);
  EXPECT_EQ(ReadHeapWord(kernel.runtime(), id, kCounterOff),
            static_cast<uint64_t>(kThreads) * kItersPerThread + 1);  // +1 warm-up
}

TEST(Concurrency, RacyCounterIsCertifiedSerialOnly) {
  MockKernel kernel{RuntimeOptions{kThreads}};
  ExtensionId id = MustLoad(kernel, RacyCounterProgram());
  ASSERT_NE(id, 0u);

  const ConcurrencyReport& report = kernel.runtime().instrumented(id).concurrency;
  EXPECT_EQ(report.safety, ShardSafety::kSerialOnly);
  EXPECT_EQ(kernel.runtime().engine_info(id).shard_safety, ShardSafety::kSerialOnly);
  EXPECT_EQ(report.unprotected_heap_accesses, 2u);
  bool unlocked = false;
  bool rmw = false;
  for (const ConcurrencyFinding& f : report.findings) {
    unlocked |= f.kind == ConcurrencyFinding::Kind::kUnlockedHeapAccess;
    rmw |= f.kind == ConcurrencyFinding::Kind::kNonAtomicHeapRmw;
    EXPECT_FALSE(f.path.empty()) << f.message;
  }
  EXPECT_TRUE(unlocked);
  EXPECT_TRUE(rmw);
}

TEST(Concurrency, LintFlagsUnlockedMapRmwAsErrors) {
  // The map-value flavor of the seeded race: lockset and atomicity surface
  // it as error-severity lint findings with witnesses (heap-class findings
  // stay certificate-only; docs/concurrency.md).
  Assembler a;
  a.LoadMapPtr(R1, 1);
  a.StImm(BPF_W, R10, -4, 0);
  a.Mov(R2, R10);
  a.AddImm(R2, -4);
  a.Call(kHelperMapLookupElem);
  auto iff = a.IfImm(BPF_JNE, R0, 0);
  a.Ldx(BPF_DW, R3, R0, 0);
  a.AddImm(R3, 1);
  a.Stx(BPF_DW, R0, 0, R3);
  a.EndIf(iff);
  a.MovImm(R0, 0);
  a.Exit();
  auto p = a.Finish("map_racy", Hook::kXdp, ExtensionMode::kEbpf, /*heap=*/0);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  VerifyOptions vo;
  vo.maps.push_back(MapDescriptor{1, 4, 8, 16});
  auto analysis = Verify(*p, vo);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();

  LintRunOptions options;
  options.passes = {"lockset", "atomicity", "lock-cycle"};
  auto findings = RunLint(*p, &*analysis, options);
  ASSERT_TRUE(findings.ok()) << findings.status().ToString();
  size_t lockset_errors = 0;
  size_t atomicity_errors = 0;
  for (const Finding& f : *findings) {
    if (f.severity != LintSeverity::kError) {
      continue;
    }
    lockset_errors += f.pass == "lockset";
    atomicity_errors += f.pass == "atomicity";
    EXPECT_FALSE(f.path.empty()) << f.message;
  }
  EXPECT_GE(lockset_errors, 2u);   // value load and value store
  EXPECT_EQ(atomicity_errors, 1u); // the load/add/store sequence
}

TEST(Concurrency, LockOrderAuditFindsCrossExtensionCycle) {
  MockKernel kernel{RuntimeOptions{kThreads}};
  ExtensionId ab = MustLoad(kernel, TwoLockProgram("ab_prog", kLockOff, kLockBOff));
  ASSERT_NE(ab, 0u);
  LoadOptions share;
  share.share_heap_with = ab;
  ExtensionId ba = MustLoad(kernel, TwoLockProgram("ba_prog", kLockBOff, kLockOff), share);
  ASSERT_NE(ba, 0u);

  // Each extension on its own is cycle-free...
  EXPECT_TRUE(kernel.runtime().instrumented(ab).concurrency.findings.empty());
  EXPECT_EQ(kernel.runtime().instrumented(ab).concurrency.edges.size(), 1u);

  // ...but together, on the shared heap, AB + BA is a deadlock cycle.
  std::vector<LockOrderGraph::Cycle> cycles = kernel.runtime().LockOrderAudit();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].edges.size(), 2u);
  ASSERT_EQ(cycles[0].programs.size(), 2u);
  EXPECT_EQ(cycles[0].programs[0], "ab_prog");
  EXPECT_EQ(cycles[0].programs[1], "ba_prog");
  EXPECT_NE(cycles[0].Describe().find("potential deadlock"), std::string::npos);
}

TEST(Concurrency, LockOrderAuditIgnoresSeparateHeaps) {
  // Without a shared heap the same AB/BA pair cannot contend on the same
  // lock words, so the audit stays quiet.
  MockKernel kernel{RuntimeOptions{kThreads}};
  ExtensionId ab = MustLoad(kernel, TwoLockProgram("ab_prog", kLockOff, kLockBOff));
  ExtensionId ba = MustLoad(kernel, TwoLockProgram("ba_prog", kLockBOff, kLockOff));
  ASSERT_NE(ab, 0u);
  ASSERT_NE(ba, 0u);
  EXPECT_TRUE(kernel.runtime().LockOrderAudit().empty());
}

TEST(Concurrency, ObsEventsForEdgesAndCycles) {
  Obs::Instance().EnableTrace(true);
  MockKernel kernel{RuntimeOptions{kThreads}};
  ExtensionId ab = MustLoad(kernel, TwoLockProgram("ab_prog", kLockOff, kLockBOff));
  LoadOptions share;
  share.share_heap_with = ab;
  MustLoad(kernel, TwoLockProgram("ba_prog", kLockBOff, kLockOff), share);
  kernel.runtime().LockOrderAudit();
  std::vector<TraceEvent> trace = Obs::Instance().SnapshotTrace();
  Obs::Instance().EnableTrace(false);

  bool edge = false;
  bool cycle = false;
  for (const TraceEvent& e : trace) {
    if (e.code == static_cast<uint16_t>(ObsEvent::kLockOrderEdge)) {
      edge |= (e.a0 == kLockOff && e.a1 == kLockBOff) ||
              (e.a0 == kLockBOff && e.a1 == kLockOff);
    }
    if (e.code == static_cast<uint16_t>(ObsEvent::kLockCycle)) {
      cycle |= e.a0 == 2 && e.a1 == 2;  // 2 edges spanning 2 programs
    }
  }
  EXPECT_TRUE(edge);
  EXPECT_TRUE(cycle);
}

TEST(Concurrency, SeededRaceChildExitMatchesSanitizer) {
  // Re-exec this binary in racy-child mode: the child loads the seeded-racy
  // (serial-only) program and forces it to run from multiple threads. Under
  // the tsan preset ThreadSanitizer reports the race and the child exits
  // nonzero; in uninstrumented builds the scenario completes silently.
  // Resolve the binary path here in the parent: inside std::system,
  // /proc/self/exe would name the shell, not this test.
  char self[4096];
  ssize_t len = readlink("/proc/self/exe", self, sizeof(self) - 1);
  ASSERT_GT(len, 0);
  self[len] = '\0';
  std::string cmd = std::string("KFLEX_CONCURRENCY_RACY_CHILD=1 '") + self + "'";
  int status = std::system(cmd.c_str());
  ASSERT_TRUE(WIFEXITED(status));
#if defined(KFLEX_TSAN_ENABLED)
  EXPECT_NE(WEXITSTATUS(status), 0) << "TSan did not catch the seeded race";
#else
  EXPECT_EQ(WEXITSTATUS(status), 0);
#endif
}

}  // namespace

// Child mode for SeededRaceChildExitMatchesSanitizer: run the racy
// multithread scenario and exit 0 unless a sanitizer objects.
int RunRacyChild() {
  MockKernel kernel{RuntimeOptions{kThreads}};
  LoadOptions lo;
  lo.heap_static_bytes = 64;
  auto id = kernel.runtime().Load([] {
    Assembler a;
    a.LoadHeapAddr(R2, kCounterOff);
    a.Ldx(BPF_DW, R3, R2, 0);
    a.AddImm(R3, 1);
    a.Stx(BPF_DW, R2, 0, R3);
    a.MovImm(R0, 0);
    a.Exit();
    auto p = a.Finish("racy_counter", Hook::kXdp, ExtensionMode::kKflex, kHeapSize);
    return std::move(p).value();
  }(), lo);
  if (!id.ok() || !kernel.Attach(*id).ok()) {
    return 2;  // setup failure, distinguishable from a clean run
  }
  HammerFromThreads(kernel, Hook::kXdp);
  return 0;
}

}  // namespace kflex

int main(int argc, char** argv) {
  if (std::getenv("KFLEX_CONCURRENCY_RACY_CHILD") != nullptr) {
    return kflex::RunRacyChild();
  }
  testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
