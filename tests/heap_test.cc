// Extension heap: layout alignment, demand paging, guard zones, terminate
// slot state machine, and creation validation.
#include "src/runtime/heap.h"

#include <gtest/gtest.h>

#include <cstring>

#include "src/base/rng.h"

namespace kflex {
namespace {

TEST(HeapLayoutTest, BasesAlignedToSize) {
  for (uint64_t size : {1ULL << 16, 1ULL << 20, 1ULL << 24, 1ULL << 30}) {
    HeapLayout layout = HeapLayout::ForSize(size);
    EXPECT_EQ(layout.kernel_base % size, 0u) << size;
    EXPECT_EQ(layout.user_base % size, 0u) << size;
    EXPECT_EQ(layout.mask(), size - 1);
    EXPECT_EQ(layout.kernel_end(), layout.kernel_base + size);
  }
}

TEST(HeapLayoutTest, KernelAndUserRegionsDisjoint) {
  HeapLayout layout = HeapLayout::ForSize(1 << 24);
  EXPECT_LT(layout.user_base + layout.size, layout.kernel_base);
}

TEST(HeapCreate, RejectsNonPowerOfTwo) {
  HeapSpec spec;
  spec.size = 100000;
  EXPECT_FALSE(ExtensionHeap::Create(spec).ok());
}

TEST(HeapCreate, RejectsTooSmall) {
  HeapSpec spec;
  spec.size = 4096;
  EXPECT_FALSE(ExtensionHeap::Create(spec).ok());
}

TEST(HeapCreate, RejectsOversizedStatics) {
  HeapSpec spec;
  spec.size = 1 << 16;
  spec.static_bytes = (1 << 16);
  EXPECT_FALSE(ExtensionHeap::Create(spec).ok());
}

TEST(HeapPaging, StaticsPopulatedAtCreation) {
  HeapSpec spec;
  spec.size = 1 << 20;
  spec.static_bytes = 10000;
  auto heap = ExtensionHeap::Create(spec);
  ASSERT_TRUE(heap.ok());
  EXPECT_TRUE(heap.value()->PagesPresent(0, 10000 + 64));
  EXPECT_FALSE(heap.value()->PagesPresent(1 << 19, 8));
  EXPECT_GE(heap.value()->dynamic_base(), 10064u);
}

TEST(HeapPaging, PopulateMarksWholePages) {
  HeapSpec spec;
  spec.size = 1 << 20;
  auto heap = ExtensionHeap::Create(spec);
  ASSERT_TRUE(heap.ok());
  uint64_t off = 200 * 1024 + 123;
  EXPECT_FALSE(heap.value()->PagesPresent(off, 1));
  heap.value()->PopulatePages(off, 1);
  EXPECT_TRUE(heap.value()->PagesPresent(off & ~(kHeapPageSize - 1), kHeapPageSize));
}

TEST(HeapPaging, CrossPageAccessNeedsBothPages) {
  HeapSpec spec;
  spec.size = 1 << 20;
  auto heap = ExtensionHeap::Create(spec);
  ASSERT_TRUE(heap.ok());
  uint64_t boundary = 64 * 1024;
  heap.value()->PopulatePages(boundary - kHeapPageSize, kHeapPageSize);
  MemFaultKind fk = MemFaultKind::kNone;
  // 8-byte access straddling into an unpopulated page must fault.
  EXPECT_EQ(heap.value()->TranslateKernel(heap.value()->layout().kernel_base + boundary - 4, 8,
                                          fk),
            nullptr);
  EXPECT_EQ(fk, MemFaultKind::kNotPresent);
}

TEST(HeapPaging, PopulatedPageCounterMonotonic) {
  HeapSpec spec;
  spec.size = 1 << 20;
  auto heap = ExtensionHeap::Create(spec);
  ASSERT_TRUE(heap.ok());
  uint64_t before = heap.value()->populated_pages();
  heap.value()->PopulatePages(500 * 1024, 3 * kHeapPageSize);
  EXPECT_EQ(heap.value()->populated_pages(), before + 3);
  heap.value()->PopulatePages(500 * 1024, 3 * kHeapPageSize);  // idempotent
  EXPECT_EQ(heap.value()->populated_pages(), before + 3);
}

TEST(HeapGuards, GuardZoneFaultsOnBothSides) {
  HeapSpec spec;
  spec.size = 1 << 20;
  auto heap = ExtensionHeap::Create(spec);
  ASSERT_TRUE(heap.ok());
  const HeapLayout& layout = heap.value()->layout();
  MemFaultKind fk = MemFaultKind::kNone;
  EXPECT_EQ(heap.value()->TranslateKernel(layout.kernel_base - 8, 8, fk), nullptr);
  EXPECT_EQ(fk, MemFaultKind::kGuardZone);
  fk = MemFaultKind::kNone;
  EXPECT_EQ(heap.value()->TranslateKernel(layout.kernel_end(), 8, fk), nullptr);
  EXPECT_EQ(fk, MemFaultKind::kGuardZone);
  EXPECT_TRUE(heap.value()->ContainsKernelVa(layout.kernel_base - kHeapGuardZone));
  EXPECT_FALSE(heap.value()->ContainsKernelVa(layout.kernel_base - kHeapGuardZone - 1));
}

TEST(HeapTerminate, ArmAndReset) {
  HeapSpec spec;
  spec.size = 1 << 20;
  auto heap = ExtensionHeap::Create(spec);
  ASSERT_TRUE(heap.ok());
  EXPECT_FALSE(heap.value()->terminate_armed());
  uint64_t slot;
  std::memcpy(&slot, heap.value()->HostAt(kTerminateSlotOff), 8);
  EXPECT_EQ(slot, heap.value()->layout().kernel_base + kTerminateTargetOff);
  heap.value()->ArmTerminate();
  EXPECT_TRUE(heap.value()->terminate_armed());
  std::memcpy(&slot, heap.value()->HostAt(kTerminateSlotOff), 8);
  EXPECT_EQ(slot, 0u);
  heap.value()->ResetTerminate();
  EXPECT_FALSE(heap.value()->terminate_armed());
}

TEST(HeapTranslate, RandomizedInBoundsAlwaysResolves) {
  HeapSpec spec;
  spec.size = 1 << 20;
  auto heap = ExtensionHeap::Create(spec);
  ASSERT_TRUE(heap.ok());
  heap.value()->PopulatePages(0, spec.size);
  const HeapLayout& layout = heap.value()->layout();
  Rng rng(11);
  for (int i = 0; i < 10000; i++) {
    uint64_t off = rng.NextBounded(spec.size - 8);
    MemFaultKind fk = MemFaultKind::kNone;
    uint8_t* p = heap.value()->TranslateKernel(layout.kernel_base + off, 8, fk);
    ASSERT_NE(p, nullptr);
    ASSERT_EQ(p, heap.value()->HostAt(off));
  }
}

}  // namespace
}  // namespace kflex
