// DSL emitters: each emitted fragment is executed on the VM and checked
// against the equivalent native computation.
#include "src/dsl/emit.h"

#include <gtest/gtest.h>

#include <cstring>

#include "src/base/rng.h"
#include "src/ebpf/assembler.h"
#include "src/runtime/runtime.h"

namespace kflex {
namespace {

constexpr uint64_t kHeap = 1 << 20;

int64_t RunOnRuntime(Runtime& runtime, Program p, uint8_t* ctx, uint32_t ctx_size,
                     uint64_t static_bytes = 4096) {
  LoadOptions lo;
  lo.heap_static_bytes = static_bytes;
  auto id = runtime.Load(p, lo);
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  InvokeResult r = runtime.Invoke(*id, 0, ctx, ctx_size);
  EXPECT_FALSE(r.cancelled);
  return r.verdict;
}

uint64_t NativeHashFinalize(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

TEST(DslEmit, HashFinalizeMatchesNative) {
  Rng rng(1);
  for (int i = 0; i < 20; i++) {
    uint64_t input = rng.Next();
    Runtime runtime{RuntimeOptions{1, 1'000'000'000ULL}};
    Assembler a;
    a.LoadImm64(R2, input);
    EmitHashFinalize(a, R2, R3);
    a.Mov(R0, R2);
    a.Exit();
    auto p = a.Finish("hash", Hook::kTracepoint, ExtensionMode::kKflex, kHeap);
    ASSERT_TRUE(p.ok());
    uint8_t ctx[64] = {0};
    EXPECT_EQ(static_cast<uint64_t>(RunOnRuntime(runtime, *p, ctx, sizeof(ctx))),
              NativeHashFinalize(input));
  }
}

TEST(DslEmit, HashKey32MatchesNativeFolding) {
  Rng rng(2);
  uint8_t ctx[2048] = {0};
  uint64_t words[4];
  for (auto& w : words) {
    w = rng.Next();
  }
  std::memcpy(ctx + 24, words, 32);

  Runtime runtime{RuntimeOptions{1, 1'000'000'000ULL}};
  Assembler a;
  EmitHashKey32(a, R2, R1, 24, R3);
  a.Mov(R0, R2);
  a.Exit();
  auto p = a.Finish("hk", Hook::kXdp, ExtensionMode::kKflex, kHeap);
  ASSERT_TRUE(p.ok());
  uint64_t h = words[0];
  for (int w = 1; w < 4; w++) {
    h = (h * 0x100000001B3ULL) ^ words[w];
  }
  h = NativeHashFinalize(h);
  EXPECT_EQ(static_cast<uint64_t>(RunOnRuntime(runtime, *p, ctx, sizeof(ctx))), h);
}

TEST(DslEmit, CopyWordsRoundTrip) {
  uint8_t ctx[2048] = {0};
  for (int i = 0; i < 64; i++) {
    ctx[24 + i] = static_cast<uint8_t>(i * 3 + 1);
  }
  Runtime runtime{RuntimeOptions{1, 1'000'000'000ULL}};
  Assembler a;
  EmitCopyWords(a, R1, 200, R1, 24, 8, R3);  // copy 64 bytes within ctx
  a.MovImm(R0, 0);
  a.Exit();
  auto p = a.Finish("cp", Hook::kXdp, ExtensionMode::kKflex, kHeap);
  ASSERT_TRUE(p.ok());
  RunOnRuntime(runtime, *p, ctx, sizeof(ctx));
  EXPECT_EQ(std::memcmp(ctx + 200, ctx + 24, 64), 0);
}

TEST(DslEmit, KeyCompareDetectsEqualAndDifferent) {
  for (bool equal : {true, false}) {
    uint8_t ctx[2048] = {0};
    for (int i = 0; i < 32; i++) {
      ctx[24 + i] = static_cast<uint8_t>(i);
      ctx[100 + i] = static_cast<uint8_t>(equal ? i : i + (i == 17 ? 1 : 0));
    }
    Runtime runtime{RuntimeOptions{1, 1'000'000'000ULL}};
    Assembler a;
    auto differ = a.NewLabel();
    EmitKeyCompare32(a, R1, 24, R1, 100, differ, R2, R3);
    a.MovImm(R0, 1);  // equal
    a.Exit();
    a.Bind(differ);
    a.MovImm(R0, 0);
    a.Exit();
    auto p = a.Finish("cmp", Hook::kXdp, ExtensionMode::kKflex, kHeap);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(RunOnRuntime(runtime, *p, ctx, sizeof(ctx)), equal ? 1 : 0);
  }
}

TEST(DslEmit, XorshiftAdvancesHeapState) {
  Runtime runtime{RuntimeOptions{1, 1'000'000'000ULL}};
  Assembler a;
  a.LoadHeapAddr(R2, 256);
  a.LoadImm64(R3, 0x12345678ULL);
  a.Stx(BPF_DW, R2, 0, R3);  // seed
  EmitXorshiftHeap(a, R0, 256, R2, R3);
  a.Exit();
  auto p = a.Finish("xs", Hook::kTracepoint, ExtensionMode::kKflex, kHeap);
  ASSERT_TRUE(p.ok());
  uint8_t ctx[64] = {0};
  uint64_t got = static_cast<uint64_t>(RunOnRuntime(runtime, *p, ctx, sizeof(ctx)));
  uint64_t x = 0x12345678ULL;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  EXPECT_EQ(got, x);
}

}  // namespace
}  // namespace kflex
