// Property tests for the tnum abstract domain: every abstract operation must
// contain the concrete result of every pair of concretizations (soundness),
// plus precision spot checks.
#include "src/verifier/tnum.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/base/rng.h"

namespace kflex {
namespace {

TEST(Tnum, ConstBasics) {
  Tnum c = Tnum::Const(42);
  EXPECT_TRUE(c.IsConst());
  EXPECT_EQ(c.UMin(), 42u);
  EXPECT_EQ(c.UMax(), 42u);
  EXPECT_TRUE(c.ContainsValue(42));
  EXPECT_FALSE(c.ContainsValue(43));
}

TEST(Tnum, UnknownContainsEverything) {
  Tnum u = Tnum::Unknown();
  EXPECT_TRUE(u.ContainsValue(0));
  EXPECT_TRUE(u.ContainsValue(~0ULL));
  EXPECT_TRUE(u.Contains(Tnum::Const(12345)));
}

TEST(Tnum, RangeContainsEndpoints) {
  Tnum r = Tnum::Range(16, 255);
  EXPECT_TRUE(r.ContainsValue(16));
  EXPECT_TRUE(r.ContainsValue(255));
  EXPECT_TRUE(r.ContainsValue(100));
}

TEST(Tnum, RangeOfSingleValue) {
  Tnum r = Tnum::Range(7, 7);
  EXPECT_TRUE(r.ContainsValue(7));
}

TEST(Tnum, AddConst) {
  Tnum s = TnumAdd(Tnum::Const(10), Tnum::Const(32));
  EXPECT_TRUE(s.IsConst());
  EXPECT_EQ(s.value, 42u);
}

TEST(Tnum, AndWithMaskBoundsResult) {
  // x & 0xFF has all high bits known zero.
  Tnum r = TnumAnd(Tnum::Unknown(), Tnum::Const(0xFF));
  EXPECT_EQ(r.UMax(), 0xFFu);
  EXPECT_EQ(r.UMin(), 0u);
}

TEST(Tnum, LshiftKeepsLowZeros) {
  Tnum r = TnumLshift(Tnum::Unknown(), 4);
  EXPECT_FALSE(r.ContainsValue(1));
  EXPECT_TRUE(r.ContainsValue(16));
}

TEST(Tnum, CastTruncates) {
  Tnum r = TnumCast(Tnum::Const(0x1234567890ULL), 4);
  EXPECT_EQ(r.value, 0x34567890u);
  Tnum full = TnumCast(Tnum::Const(0x1234567890ULL), 8);
  EXPECT_EQ(full.value, 0x1234567890ULL);
}

TEST(Tnum, UnionContainsBoth) {
  Tnum u = TnumUnion(Tnum::Const(8), Tnum::Const(24));
  EXPECT_TRUE(u.ContainsValue(8));
  EXPECT_TRUE(u.ContainsValue(24));
}

TEST(Tnum, IntersectOfOverlapping) {
  Tnum a{0x10, 0x0F};  // 0x10..0x1F
  Tnum i = TnumIntersect(a, Tnum::Const(0x15));
  EXPECT_TRUE(i.ContainsValue(0x15));
  EXPECT_TRUE(i.IsConst());
}

// ---- Soundness sweep: abstract op contains concrete op ----

struct TnumOpCase {
  const char* name;
  Tnum (*abstract)(Tnum, Tnum);
  uint64_t (*concrete)(uint64_t, uint64_t);
};

class TnumSoundness : public ::testing::TestWithParam<TnumOpCase> {};

// Draws a random tnum and a concrete member value.
void RandomTnumAndValue(Rng& rng, Tnum& t, uint64_t& v) {
  uint64_t mask = rng.Next() & rng.Next();  // biased toward fewer unknown bits
  uint64_t value = rng.Next() & ~mask;
  t = Tnum{value, mask};
  v = value | (rng.Next() & mask);
}

TEST_P(TnumSoundness, AbstractContainsConcrete) {
  const TnumOpCase& c = GetParam();
  Rng rng(0xC0FFEE ^ reinterpret_cast<uintptr_t>(c.name));
  for (int iter = 0; iter < 20000; iter++) {
    Tnum ta, tb;
    uint64_t va, vb;
    RandomTnumAndValue(rng, ta, va);
    RandomTnumAndValue(rng, tb, vb);
    Tnum result = c.abstract(ta, tb);
    uint64_t concrete = c.concrete(va, vb);
    ASSERT_TRUE(result.ContainsValue(concrete))
        << c.name << " a=" << ta.ToString() << " b=" << tb.ToString() << " va=" << va
        << " vb=" << vb << " result=" << result.ToString() << " concrete=" << concrete;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, TnumSoundness,
    ::testing::Values(
        TnumOpCase{"add", TnumAdd, [](uint64_t a, uint64_t b) { return a + b; }},
        TnumOpCase{"sub", TnumSub, [](uint64_t a, uint64_t b) { return a - b; }},
        TnumOpCase{"and", TnumAnd, [](uint64_t a, uint64_t b) { return a & b; }},
        TnumOpCase{"or", TnumOr, [](uint64_t a, uint64_t b) { return a | b; }},
        TnumOpCase{"xor", TnumXor, [](uint64_t a, uint64_t b) { return a ^ b; }},
        TnumOpCase{"mul", TnumMul, [](uint64_t a, uint64_t b) { return a * b; }},
        TnumOpCase{"union", TnumUnion, [](uint64_t a, uint64_t b) { return a; }}),
    [](const ::testing::TestParamInfo<TnumOpCase>& param_info) { return param_info.param.name; });

class TnumShiftSoundness : public ::testing::TestWithParam<int> {};

TEST_P(TnumShiftSoundness, Shifts) {
  int shift = GetParam();
  Rng rng(0xBEEF + static_cast<uint64_t>(shift));
  for (int iter = 0; iter < 5000; iter++) {
    Tnum t;
    uint64_t v;
    RandomTnumAndValue(rng, t, v);
    EXPECT_TRUE(TnumLshift(t, static_cast<uint8_t>(shift)).ContainsValue(v << shift));
    EXPECT_TRUE(TnumRshift(t, static_cast<uint8_t>(shift)).ContainsValue(v >> shift));
    EXPECT_TRUE(TnumArshift(t, static_cast<uint8_t>(shift))
                    .ContainsValue(static_cast<uint64_t>(static_cast<int64_t>(v) >> shift)));
  }
}

INSTANTIATE_TEST_SUITE_P(ShiftAmounts, TnumShiftSoundness,
                         ::testing::Values(0, 1, 3, 7, 13, 31, 33, 63));

TEST(TnumRange, SoundOverRandomRanges) {
  Rng rng(777);
  for (int iter = 0; iter < 20000; iter++) {
    uint64_t a = rng.Next();
    uint64_t b = rng.Next();
    uint64_t lo = std::min(a, b);
    uint64_t hi = std::max(a, b);
    Tnum r = Tnum::Range(lo, hi);
    uint64_t v = lo + rng.Next() % (hi - lo + 1);
    ASSERT_TRUE(r.ContainsValue(v)) << "range [" << lo << "," << hi << "] v=" << v;
  }
}

}  // namespace
}  // namespace kflex
