// Kie instrumentation: guard emission/elision, cancellation-point insertion,
// jump retargeting, pseudo-instruction concretization, translate-on-store,
// and the SFI masking property (sanitized addresses always land in the heap).
#include "src/kie/kie.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/runtime/heap.h"
#include "src/runtime/vm.h"
#include "src/verifier/verifier.h"

namespace kflex {
namespace {

constexpr uint64_t kHeapSize = 1 << 20;

struct Pipeline {
  Program program;
  Analysis analysis;
  HeapLayout layout;
};

Pipeline VerifyProgram(Assembler& a, uint64_t heap = kHeapSize) {
  auto p = a.Finish("t", Hook::kXdp, ExtensionMode::kKflex, heap);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  auto analysis = Verify(*p, VerifyOptions{});
  EXPECT_TRUE(analysis.ok()) << analysis.status().ToString();
  return Pipeline{std::move(p).value(), std::move(analysis).value(),
                  HeapLayout::ForSize(heap)};
}

size_t CountOpcode(const Program& p, uint8_t opcode) {
  size_t n = 0;
  for (size_t i = 0; i < p.insns.size(); i++) {
    if (p.insns[i].opcode == opcode) {
      n++;
    }
    if (p.insns[i].IsLdImm64()) {
      i++;
    }
  }
  return n;
}

TEST(Kie, ElidedAccessGetsNoGuard) {
  Assembler a;
  a.LoadHeapAddr(R2, 64);
  a.StImm(BPF_DW, R2, 0, 42);
  a.MovImm(R0, 0);
  a.Exit();
  Pipeline pl = VerifyProgram(a);
  auto ip = Instrument(pl.program, pl.analysis, pl.layout, KieOptions{});
  ASSERT_TRUE(ip.ok()) << ip.status().ToString();
  EXPECT_EQ(CountOpcode(ip->program, kKieSanitizeOpcode), 0u);
}

TEST(Kie, UnprovenAccessGetsGuard) {
  Assembler a;
  a.Ldx(BPF_DW, R3, R1, 0);
  a.LoadHeapAddr(R2, 64);
  a.Add(R2, R3);
  a.StImm(BPF_DW, R2, 0, 42);
  a.MovImm(R0, 0);
  a.Exit();
  Pipeline pl = VerifyProgram(a);
  auto ip = Instrument(pl.program, pl.analysis, pl.layout, KieOptions{});
  ASSERT_TRUE(ip.ok()) << ip.status().ToString();
  EXPECT_EQ(ip->stats.guards_emitted, 1u);
  size_t sanitizes = 0;
  for (const Insn& insn : ip->program.insns) {
    if (insn.opcode == kKieSanitizeOpcode) {
      sanitizes++;
    }
  }
  EXPECT_EQ(sanitizes, 1u);
}

TEST(Kie, ElisionDisabledGuardsEverything) {
  Assembler a;
  a.LoadHeapAddr(R2, 64);
  a.StImm(BPF_DW, R2, 0, 42);
  a.Ldx(BPF_DW, R0, R2, 8);
  a.Exit();
  Pipeline pl = VerifyProgram(a);
  KieOptions opts;
  opts.elide_guards = false;
  auto ip = Instrument(pl.program, pl.analysis, pl.layout, opts);
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ip->stats.guards_emitted, 2u);
  EXPECT_EQ(ip->stats.guards_elided, 0u);
}

TEST(Kie, PerformanceModeSkipsReadGuards) {
  Assembler a;
  a.Ldx(BPF_DW, R3, R1, 0);
  a.LoadHeapAddr(R2, 64);
  a.Add(R2, R3);
  a.Ldx(BPF_DW, R0, R2, 0);   // unproven read
  a.Stx(BPF_DW, R2, 8, R0);   // unproven write
  a.MovImm(R0, 0);
  a.Exit();
  Pipeline pl = VerifyProgram(a);
  KieOptions pm;
  pm.performance_mode = true;
  auto ip = Instrument(pl.program, pl.analysis, pl.layout, pm);
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ip->stats.guards_emitted, 1u);  // only the store
}

TEST(Kie, SfiDisabledEmitsNothing) {
  Assembler a;
  a.Ldx(BPF_DW, R3, R1, 0);
  a.LoadHeapAddr(R2, 64);
  a.Add(R2, R3);
  a.Stx(BPF_DW, R2, 0, R3);
  a.MovImm(R0, 0);
  a.Exit();
  Pipeline pl = VerifyProgram(a);
  KieOptions kmod;
  kmod.sfi = false;
  kmod.cancellation = false;
  auto ip = Instrument(pl.program, pl.analysis, pl.layout, kmod);
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ip->stats.guards_emitted, 0u);
  EXPECT_EQ(ip->program.insns.size(), pl.program.insns.size());
}

TEST(Kie, CancellationBackEdgeGetsTerminateLoad) {
  Assembler a;
  a.Ldx(BPF_DW, R2, R1, 0);
  a.MovImm(R0, 0);
  auto loop = a.LoopBegin();
  a.LoopBreakIfImm(loop, BPF_JEQ, R2, 0);
  a.SubImm(R2, 2);
  a.LoopEnd(loop);
  a.Exit();
  Pipeline pl = VerifyProgram(a);
  ASSERT_EQ(pl.analysis.cancellation_back_edges.size(), 1u);
  auto ip = Instrument(pl.program, pl.analysis, pl.layout, KieOptions{});
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ip->stats.cancellation_points, 1u);
  EXPECT_EQ(ip->terminate_load_pcs.size(), 1u);
  // The loop must still execute correctly after retargeting.
  VmEnv env;
  uint8_t ctx[2048] = {0};
  ctx[0] = 10;  // R2 = 10 -> 5 iterations
  env.ctx = ctx;
  env.ctx_size = sizeof(ctx);
  HeapSpec spec;
  spec.size = kHeapSize;
  auto heap = ExtensionHeap::Create(spec);
  ASSERT_TRUE(heap.ok());
  env.heap = heap.value().get();
  VmResult r = VmRun(ip->program.insns, env);
  EXPECT_EQ(r.outcome, VmResult::Outcome::kOk);
}

TEST(Kie, HeapVarConcretizedToAbsoluteVa) {
  Assembler a;
  a.LoadHeapAddr(R2, 128);
  a.Ldx(BPF_DW, R0, R2, 0);
  a.Exit();
  Pipeline pl = VerifyProgram(a);
  auto ip = Instrument(pl.program, pl.analysis, pl.layout, KieOptions{});
  ASSERT_TRUE(ip.ok());
  const Insn& lo = ip->program.insns[0];
  ASSERT_TRUE(lo.IsLdImm64());
  EXPECT_EQ(lo.src, kPseudoNone);
  EXPECT_EQ(LdImm64Value(lo, ip->program.insns[1]), pl.layout.kernel_base + 128);
}

TEST(Kie, TranslateOnStoreRewritesHeapPointerStores) {
  Assembler a;
  a.MovImm(R1, 64);
  a.Call(kHelperKflexMalloc);
  auto iff = a.IfImm(BPF_JNE, R0, 0);
  a.LoadHeapAddr(R2, 64);
  a.Stx(BPF_DW, R2, 0, R0);  // store heap pointer -> translate
  a.EndIf(iff);
  a.MovImm(R0, 0);
  a.Exit();
  Pipeline pl = VerifyProgram(a);
  KieOptions opts;
  opts.translate_on_store = true;
  auto ip = Instrument(pl.program, pl.analysis, pl.layout, opts);
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ip->stats.translations, 1u);
  size_t translates = 0;
  for (const Insn& insn : ip->program.insns) {
    if (insn.opcode == kKieTranslateOpcode) {
      translates++;
    }
  }
  EXPECT_EQ(translates, 1u);
}

TEST(Kie, ObjectTablesRemapToInstrumentedPcs) {
  Assembler a;
  // Acquire a socket, then touch the heap (C2 Cp) while holding it.
  a.Mov(R7, R1);  // save ctx: R1-R5 are clobbered by the call
  a.StImm(BPF_W, R10, -16, 1);
  a.StImm(BPF_W, R10, -12, 2);
  a.Mov(R2, R10);
  a.AddImm(R2, -16);
  a.MovImm(R3, 8);
  a.MovImm(R4, 0);
  a.MovImm(R5, 0);
  a.Call(kHelperSkLookupUdp);
  auto iff = a.IfImm(BPF_JNE, R0, 0);
  a.Mov(R6, R0);
  a.MovImm(R0, 0);
  a.Ldx(BPF_DW, R3, R7, 0);
  a.LoadHeapAddr(R2, 64);
  a.Add(R2, R3);
  a.StImm(BPF_DW, R2, 0, 5);  // guarded heap access while socket held
  a.Mov(R1, R6);
  a.Call(kHelperSkRelease);
  a.EndIf(iff);
  a.MovImm(R0, 0);
  a.Exit();
  Pipeline pl = VerifyProgram(a);
  auto ip = Instrument(pl.program, pl.analysis, pl.layout, KieOptions{});
  ASSERT_TRUE(ip.ok());
  ASSERT_FALSE(ip->object_tables.empty());
  for (const auto& [pc, table] : ip->object_tables) {
    ASSERT_LT(pc, ip->program.insns.size());
    const Insn& insn = ip->program.insns[pc];
    EXPECT_TRUE(insn.IsStore() || insn.IsLoad() || insn.IsCall() || insn.IsAtomic())
        << "pc " << pc << " is " << InsnToString(insn);
  }
}

TEST(Kie, DeadHandlePrunedFromObjectTable) {
  // The socket handle is copied into R6 (never used again: dead at the Cp)
  // and R8 (used for the release: live at the Cp). Liveness-driven entry
  // selection must record the live alias only -- the old location policy
  // would have picked the first alias in register order (R6).
  Assembler a;
  a.Mov(R7, R1);  // save ctx: R1-R5 are clobbered by the call
  a.StImm(BPF_W, R10, -16, 1);
  a.StImm(BPF_W, R10, -12, 2);
  a.Mov(R2, R10);
  a.AddImm(R2, -16);
  a.MovImm(R3, 8);
  a.MovImm(R4, 0);
  a.MovImm(R5, 0);
  a.Call(kHelperSkLookupUdp);
  auto iff = a.IfImm(BPF_JNE, R0, 0);
  a.Mov(R6, R0);  // dead alias
  a.Mov(R8, R0);  // live alias
  a.MovImm(R0, 0);
  a.Ldx(BPF_DW, R3, R7, 0);
  a.LoadHeapAddr(R2, 64);
  a.Add(R2, R3);
  a.StImm(BPF_DW, R2, 0, 5);  // guarded heap access (C2 Cp) while socket held
  a.Mov(R1, R8);
  a.Call(kHelperSkRelease);
  a.EndIf(iff);
  a.MovImm(R0, 0);
  a.Exit();
  Pipeline pl = VerifyProgram(a);

  EXPECT_GE(pl.analysis.pruned_object_entries, 1u);
  bool saw_socket_entry = false;
  for (const auto& [pc, table] : pl.analysis.object_tables) {
    for (const ObjectTableEntry& e : table) {
      if (e.kind == ResourceKind::kSocket) {
        saw_socket_entry = true;
        EXPECT_EQ(e.reg, R8) << "entry must use the live alias, not dead R6/R0";
      }
    }
  }
  EXPECT_TRUE(saw_socket_entry);

  // The pruning is accounting-only: instrumentation still succeeds and the
  // surviving entry remaps like any other.
  auto ip = Instrument(pl.program, pl.analysis, pl.layout, KieOptions{});
  ASSERT_TRUE(ip.ok()) << ip.status().ToString();
  EXPECT_EQ(ip->stats.pruned_object_entries, pl.analysis.pruned_object_entries);
}

TEST(Kie, GuardAndTranslateComposeWithTwoScratchRegisters) {
  // Store of a heap pointer through an UNPROVEN base: needs both the
  // translate (src -> RAX) and the guard (base -> RBX).
  Assembler a;
  a.Mov(R6, R1);  // save ctx across the call
  a.MovImm(R1, 64);
  a.Call(kHelperKflexMalloc);
  auto null = a.IfImm(BPF_JEQ, R0, 0);
  a.MovImm(R0, 0);
  a.Exit();
  a.EndIf(null);
  a.Ldx(BPF_DW, R3, R6, 0);
  a.LoadHeapAddr(R2, 64);
  a.Add(R2, R3);             // unproven base
  a.Stx(BPF_DW, R2, 0, R0);  // store heap pointer
  a.MovImm(R0, 0);
  a.Exit();
  Pipeline pl = VerifyProgram(a);
  KieOptions opts;
  opts.translate_on_store = true;
  auto ip = Instrument(pl.program, pl.analysis, pl.layout, opts);
  ASSERT_TRUE(ip.ok()) << ip.status().ToString();
  bool used_rbx = false;
  for (const Insn& insn : ip->program.insns) {
    if (insn.opcode == kKieSanitizeOpcode && insn.dst == RBX) {
      used_rbx = true;
    }
  }
  EXPECT_TRUE(used_rbx) << "combined guard+translate must use the second scratch register";
  EXPECT_EQ(ip->stats.translations, 1u);
  EXPECT_GE(ip->stats.guards_emitted, 1u);
}

TEST(Kie, ClockSampledModeEmitsFuelChecks) {
  Assembler a;
  a.Ldx(BPF_DW, R2, R1, 0);
  a.MovImm(R0, 0);
  auto loop = a.LoopBegin();
  a.LoopBreakIfImm(loop, BPF_JEQ, R2, 0);
  a.SubImm(R2, 2);
  a.LoopEnd(loop);
  a.Exit();
  Pipeline pl = VerifyProgram(a);
  KieOptions opts;
  opts.cancellation_mode = CancellationMode::kClockSampled;
  auto ip = Instrument(pl.program, pl.analysis, pl.layout, opts);
  ASSERT_TRUE(ip.ok());
  size_t fuel = 0;
  for (const Insn& insn : ip->program.insns) {
    if (insn.opcode == kKieFuelCheckOpcode) {
      fuel++;
    }
  }
  EXPECT_EQ(fuel, 1u);
  EXPECT_EQ(ip->stats.cancellation_points, 1u);
  // One pseudo-insn instead of the 4-slot terminate sequence.
  auto ip_term = Instrument(pl.program, pl.analysis, pl.layout, KieOptions{});
  ASSERT_TRUE(ip_term.ok());
  EXPECT_LT(ip->program.insns.size(), ip_term->program.insns.size());
}

TEST(Kie, InstrumentationMaskCoversOnlyInsertedInsns) {
  Assembler a;
  a.Ldx(BPF_DW, R3, R1, 0);
  a.LoadHeapAddr(R2, 64);
  a.Add(R2, R3);
  a.StImm(BPF_DW, R2, 0, 1);  // guarded
  a.MovImm(R0, 0);
  a.Exit();
  Pipeline pl = VerifyProgram(a);
  auto ip = Instrument(pl.program, pl.analysis, pl.layout, KieOptions{});
  ASSERT_TRUE(ip.ok());
  ASSERT_EQ(ip->instrumentation_mask.size(), ip->program.insns.size());
  size_t marked = 0;
  for (size_t i = 0; i < ip->instrumentation_mask.size(); i++) {
    if (ip->instrumentation_mask[i] != 0) {
      marked++;
      const Insn& insn = ip->program.insns[i];
      EXPECT_TRUE(insn.opcode == kKieSanitizeOpcode || insn.opcode == kKieTranslateOpcode ||
                  insn.opcode == kKieFuelCheckOpcode ||
                  (insn.IsAlu() && insn.AluOpField() == BPF_MOV) || insn.IsLdImm64() ||
                  insn.opcode == 0 /* ld_imm64 hi slot */ || insn.IsLoad())
          << InsnToString(insn);
    }
  }
  EXPECT_EQ(marked, 2u);  // MOV + SANITIZE for the one guard
}

// Property: for random addresses, executing SANITIZE always yields an
// address within the heap window, and in-heap addresses are unchanged.
TEST(Kie, SanitizePropertySweep) {
  HeapSpec spec;
  spec.size = kHeapSize;
  auto heap = ExtensionHeap::Create(spec);
  ASSERT_TRUE(heap.ok());
  const HeapLayout& layout = heap.value()->layout();
  Rng rng(4242);
  for (int i = 0; i < 10000; i++) {
    uint64_t addr = rng.Next();
    uint64_t sanitized = layout.kernel_base + (addr & layout.mask());
    ASSERT_GE(sanitized, layout.kernel_base);
    ASSERT_LT(sanitized, layout.kernel_end());
    uint64_t inside = layout.kernel_base + (rng.Next() & layout.mask());
    uint64_t sanitized_inside = layout.kernel_base + (inside & layout.mask());
    ASSERT_EQ(sanitized_inside, inside);
  }
}

TEST(Kie, StatsMatchAnalysis) {
  Assembler a;
  a.LoadHeapAddr(R2, 64);
  a.StImm(BPF_DW, R2, 0, 1);   // elided
  a.Ldx(BPF_DW, R3, R2, 8);    // elided load
  a.Ldx(BPF_DW, R0, R3, 0);    // formation guard
  a.Exit();
  Pipeline pl = VerifyProgram(a);
  auto ip = Instrument(pl.program, pl.analysis, pl.layout, KieOptions{});
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ip->stats.pointer_guard_sites, 2u);
  EXPECT_EQ(ip->stats.guards_elided, 2u);
  EXPECT_EQ(ip->stats.formation_guards, 1u);
  EXPECT_EQ(pl.analysis.elided_guards, 2u);
  EXPECT_EQ(pl.analysis.formation_guards, 1u);
}

}  // namespace
}  // namespace kflex
