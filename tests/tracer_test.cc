// Observability / security extensions: LSM syscall filtering with live
// user-space policy updates, and the in-kernel latency histogram.
#include "src/apps/tracer.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/verifier/verifier.h"

namespace kflex {
namespace {

TEST(SyscallFilterTest, DenyListEnforced) {
  MockKernel kernel;
  auto filter = SyscallFilter::Create(kernel);
  ASSERT_TRUE(filter.ok()) << filter.status().ToString();

  EXPECT_EQ(filter->Check(0, 59), 0);  // execve allowed by default
  filter->Deny(59);
  EXPECT_EQ(filter->Check(0, 59), -1);
  EXPECT_EQ(filter->Check(0, 60), 0);  // neighbours unaffected
  EXPECT_EQ(filter->denied_hits(), 1u);

  // Live policy update from user space: no reload involved.
  filter->Allow(59);
  EXPECT_EQ(filter->Check(0, 59), 0);
  EXPECT_EQ(filter->denied_hits(), 1u);
}

TEST(SyscallFilterTest, OutOfRangeSyscallsAllowed) {
  MockKernel kernel;
  auto filter = SyscallFilter::Create(kernel);
  ASSERT_TRUE(filter.ok());
  EXPECT_EQ(filter->Check(0, SyscallFilterLayout::kMaxSyscalls), 0);
  EXPECT_EQ(filter->Check(0, ~0ULL), 0);
}

TEST(SyscallFilterTest, RandomizedPolicySweep) {
  MockKernel kernel;
  auto filter = SyscallFilter::Create(kernel);
  ASSERT_TRUE(filter.ok());
  Rng rng(42);
  std::set<uint64_t> denied;
  for (int i = 0; i < 300; i++) {
    uint64_t nr = rng.NextBounded(SyscallFilterLayout::kMaxSyscalls);
    if (rng.NextBounded(2) == 0) {
      filter->Deny(nr);
      denied.insert(nr);
    } else {
      filter->Allow(nr);
      denied.erase(nr);
    }
  }
  for (int i = 0; i < 500; i++) {
    uint64_t nr = rng.NextBounded(SyscallFilterLayout::kMaxSyscalls);
    EXPECT_EQ(filter->Check(0, nr), denied.count(nr) ? -1 : 0) << "nr " << nr;
  }
}

TEST(SyscallFilterTest, BitmapAccessesAreGuardFree) {
  Program p = BuildSyscallFilterExtension();
  auto analysis = Verify(p, VerifyOptions{});
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  // Every heap access is bounded by the syscall-number check: full elision.
  EXPECT_EQ(analysis->required_guards, 0u);
  EXPECT_EQ(analysis->formation_guards, 0u);
  EXPECT_GE(analysis->elided_guards, 2u);
}

TEST(SyscallFilterTest, CancelledFilterDeniesByDefault) {
  MockKernel kernel;
  auto filter = SyscallFilter::Create(kernel);
  ASSERT_TRUE(filter.ok());
  kernel.runtime().Cancel(filter->id());
  // No loops in this extension, so the armed terminate never fires for it;
  // force-unload semantics are covered elsewhere. Here we check the verdict
  // policy helper directly.
  EXPECT_EQ(HookDefaultVerdict(Hook::kLsm), -1);
}

TEST(LatencyTracerTest, HistogramMatchesNativeLog2) {
  MockKernel kernel;
  auto tracer = LatencyTracer::Create(kernel);
  ASSERT_TRUE(tracer.ok()) << tracer.status().ToString();

  Rng rng(7);
  std::array<uint64_t, 64> expect{};
  uint64_t total = 0;
  uint64_t sum = 0;
  for (int i = 0; i < 2000; i++) {
    uint64_t lat = 1 + (rng.Next() >> (rng.NextBounded(50)));
    tracer->Record(0, lat);
    int bucket = 0;
    uint64_t v = lat;
    while (v > 1 && bucket < 63) {
      v >>= 1;
      bucket++;
    }
    expect[static_cast<size_t>(bucket)]++;
    total++;
    sum += lat;
  }
  EXPECT_EQ(tracer->TotalCount(), total);
  EXPECT_EQ(tracer->TotalSum(), sum);
  for (int b = 0; b < 64; b++) {
    EXPECT_EQ(tracer->BucketCount(b), expect[static_cast<size_t>(b)]) << "bucket " << b;
  }
}

TEST(LatencyTracerTest, FullyStaticallyVerified) {
  Program p = BuildLatencyTracerExtension();
  auto analysis = Verify(p, VerifyOptions{});
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  EXPECT_EQ(analysis->required_guards, 0u);
  EXPECT_EQ(analysis->formation_guards, 0u);
  EXPECT_TRUE(analysis->cancellation_back_edges.empty())
      << "the log2 loop is bounded and needs no cancellation point";
}

TEST(LatencyTracerTest, CoexistsWithSyscallFilter) {
  MockKernel kernel;
  auto filter = SyscallFilter::Create(kernel);
  ASSERT_TRUE(filter.ok());
  auto tracer = LatencyTracer::Create(kernel);
  ASSERT_TRUE(tracer.ok());
  filter->Deny(1);
  tracer->Record(0, 4096);
  EXPECT_EQ(filter->Check(0, 1), -1);
  EXPECT_EQ(tracer->BucketCount(12), 1u);
}

}  // namespace
}  // namespace kflex
