// Lint pass registry and the four built-in passes (src/verifier/lint.h):
// each detects its crafted negative program, and none fires on clean
// programs (zero false positives).
#include "src/verifier/lint.h"

#include <gtest/gtest.h>

#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/ebpf/text_asm.h"
#include "src/verifier/verifier.h"

namespace kflex {
namespace {

Program MustFinish(Assembler& a, uint64_t heap_size = 0) {
  auto p = a.Finish("lint_test", Hook::kTracepoint, ExtensionMode::kKflex, heap_size);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

std::vector<Finding> MustLint(const Program& p, const Analysis* analysis = nullptr) {
  auto findings = RunLint(p, analysis);
  EXPECT_TRUE(findings.ok()) << findings.status().ToString();
  return findings.ok() ? *findings : std::vector<Finding>{};
}

size_t CountPass(const std::vector<Finding>& findings, const std::string& pass,
                 LintSeverity min_severity = LintSeverity::kNote) {
  size_t n = 0;
  for (const Finding& f : findings) {
    if (f.pass == pass && f.severity >= min_severity) {
      n++;
    }
  }
  return n;
}

TEST(LintRegistry, HasAllFourBuiltinPasses) {
  const auto& passes = LintPasses();
  ASSERT_GE(passes.size(), 4u);
  auto has = [&](const std::string& name) {
    for (const LintPass& p : passes) {
      if (name == p.name) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has("dead-code"));
  EXPECT_TRUE(has("lock-order"));
  EXPECT_TRUE(has("ref-leak"));
  EXPECT_TRUE(has("helper-contract"));
}

TEST(LintRegistry, RejectsDuplicateAndRunsCustomPass) {
  LintPass dup{"dead-code", "duplicate", nullptr};
  EXPECT_FALSE(RegisterLintPass(dup));

  static bool ran = false;
  LintPass custom{"lint-test-custom", "test-only pass",
                  [](const LintContext& ctx, std::vector<Finding>& out) {
                    ran = true;
                    out.push_back({0, LintSeverity::kNote, "lint-test-custom",
                                   "program has " + std::to_string(ctx.program.size()) +
                                       " insns"});
                  }};
  ASSERT_TRUE(RegisterLintPass(custom));

  Assembler a;
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a);
  std::vector<Finding> findings = MustLint(p);
  EXPECT_TRUE(ran);
  EXPECT_EQ(CountPass(findings, "lint-test-custom"), 1u);
}

// ---- dead-code --------------------------------------------------------------

TEST(LintDeadCode, DetectsDeadStore) {
  Assembler a;
  size_t dead_pc = a.CurrentPc();
  a.MovImm(R2, 5);  // overwritten before any read
  a.MovImm(R2, 7);
  a.Mov(R0, R2);
  a.Exit();
  Program p = MustFinish(a);

  std::vector<Finding> findings = MustLint(p);
  ASSERT_EQ(CountPass(findings, "dead-code"), 1u);
  for (const Finding& f : findings) {
    if (f.pass == "dead-code") {
      EXPECT_EQ(f.pc, dead_pc);
      EXPECT_EQ(f.severity, LintSeverity::kWarning);
    }
  }
}

TEST(LintDeadCode, DetectsUnreachableCode) {
  Assembler a;
  a.MovImm(R0, 0);
  a.Exit();
  size_t dead_pc = a.CurrentPc();
  a.MovImm(R0, 1);
  a.Exit();
  Program p = MustFinish(a);

  std::vector<Finding> findings = MustLint(p);
  bool found = false;
  for (const Finding& f : findings) {
    if (f.pass == "dead-code" && f.pc == dead_pc &&
        f.message.find("unreachable") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LintDeadCode, DetectsDeadStackStore) {
  Assembler a;
  a.MovImm(R6, 1);
  size_t dead_pc = a.CurrentPc();
  a.Stx(BPF_DW, R10, -8, R6);  // never read back, no helper call follows
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a);

  std::vector<Finding> findings = MustLint(p);
  bool found = false;
  for (const Finding& f : findings) {
    found |= f.pass == "dead-code" && f.pc == dead_pc;
  }
  EXPECT_TRUE(found);
}

// ---- lock-order -------------------------------------------------------------

TEST(LintLockOrder, DetectsInversionAcrossBranches) {
  Assembler a;
  a.MovImm(R6, 0);
  auto iff = a.IfImm(BPF_JEQ, R6, 0);
  a.LoadHeapAddr(R1, 0);
  a.Call(kHelperKflexSpinLock);
  a.LoadHeapAddr(R1, 8);
  a.Call(kHelperKflexSpinLock);  // acquires 8 while holding 0
  a.LoadHeapAddr(R1, 8);
  a.Call(kHelperKflexSpinUnlock);
  a.LoadHeapAddr(R1, 0);
  a.Call(kHelperKflexSpinUnlock);
  a.Else(iff);
  a.LoadHeapAddr(R1, 8);
  a.Call(kHelperKflexSpinLock);
  a.LoadHeapAddr(R1, 0);
  a.Call(kHelperKflexSpinLock);  // acquires 0 while holding 8: inversion
  a.LoadHeapAddr(R1, 0);
  a.Call(kHelperKflexSpinUnlock);
  a.LoadHeapAddr(R1, 8);
  a.Call(kHelperKflexSpinUnlock);
  a.EndIf(iff);
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a, /*heap_size=*/4096);

  std::vector<Finding> findings = MustLint(p);
  EXPECT_EQ(CountPass(findings, "lock-order", LintSeverity::kError), 1u);
  bool mentions_inversion = false;
  for (const Finding& f : findings) {
    mentions_inversion |= f.pass == "lock-order" &&
                          f.message.find("inversion") != std::string::npos;
  }
  EXPECT_TRUE(mentions_inversion);
}

TEST(LintLockOrder, DetectsReacquireDeadlock) {
  Assembler a;
  a.LoadHeapAddr(R1, 16);
  a.Call(kHelperKflexSpinLock);
  a.LoadHeapAddr(R1, 16);
  size_t reacquire_pc = a.CurrentPc();
  a.Call(kHelperKflexSpinLock);
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a, /*heap_size=*/4096);

  std::vector<Finding> findings = MustLint(p);
  bool found = false;
  for (const Finding& f : findings) {
    found |= f.pass == "lock-order" && f.pc == reacquire_pc &&
             f.severity == LintSeverity::kError;
  }
  EXPECT_TRUE(found);
}

TEST(LintLockOrder, ConsistentNestingIsClean) {
  Assembler a;
  a.LoadHeapAddr(R1, 0);
  a.Call(kHelperKflexSpinLock);
  a.LoadHeapAddr(R1, 8);
  a.Call(kHelperKflexSpinLock);
  a.LoadHeapAddr(R1, 8);
  a.Call(kHelperKflexSpinUnlock);
  a.LoadHeapAddr(R1, 0);
  a.Call(kHelperKflexSpinUnlock);
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a, /*heap_size=*/4096);

  EXPECT_EQ(CountPass(MustLint(p), "lock-order"), 0u);
}

// ---- ref-leak ---------------------------------------------------------------

TEST(LintRefLeak, DetectsLeakOnExitPath) {
  Assembler a;
  a.Call(kHelperSkLookupUdp);  // acquires (argument typing is not lint's job)
  auto iff = a.IfImm(BPF_JNE, R0, 0);
  a.MovImm(R0, 0);  // non-null branch: exits WITHOUT releasing
  a.Exit();
  a.EndIf(iff);
  a.MovImm(R0, 0);  // null branch: nothing to release
  a.Exit();
  Program p = MustFinish(a);

  std::vector<Finding> findings = MustLint(p);
  EXPECT_EQ(CountPass(findings, "ref-leak", LintSeverity::kError), 1u);
}

TEST(LintRefLeak, ProperReleaseIsClean) {
  Assembler a;
  a.Call(kHelperSkLookupUdp);
  auto iff = a.IfImm(BPF_JNE, R0, 0);
  a.Mov(R1, R0);
  a.Call(kHelperSkRelease);
  a.EndIf(iff);
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a);

  EXPECT_EQ(CountPass(MustLint(p), "ref-leak"), 0u);
}

TEST(LintRefLeak, TracksHandleThroughSpillAndFill) {
  Assembler a;
  a.Call(kHelperSkLookupUdp);
  auto iff = a.IfImm(BPF_JNE, R0, 0);
  a.Stx(BPF_DW, R10, -8, R0);   // spill handle
  a.Ldx(BPF_DW, R1, R10, -8);   // fill into R1
  a.Call(kHelperSkRelease);
  a.EndIf(iff);
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a);

  EXPECT_EQ(CountPass(MustLint(p), "ref-leak"), 0u);
}

// ---- helper-contract --------------------------------------------------------

TEST(LintHelperContract, DetectsOversizedMalloc) {
  Assembler a;
  a.MovImm(R1, 8192);  // heap is only 4096 bytes
  size_t call_pc = a.CurrentPc();
  a.Call(kHelperKflexMalloc);
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a, /*heap_size=*/4096);

  std::vector<Finding> findings = MustLint(p);
  bool found = false;
  for (const Finding& f : findings) {
    found |= f.pass == "helper-contract" && f.pc == call_pc &&
             f.severity == LintSeverity::kError;
  }
  EXPECT_TRUE(found);
}

TEST(LintHelperContract, DetectsMisalignedAndOutOfBoundsLock) {
  Assembler a;
  a.LoadHeapAddr(R1, 13);  // misaligned
  a.Call(kHelperKflexSpinLock);
  a.LoadHeapAddr(R1, 13);
  a.Call(kHelperKflexSpinUnlock);
  a.LoadHeapAddr(R1, 8192);  // outside the 4096-byte heap
  a.Call(kHelperKflexSpinLock);
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a, /*heap_size=*/4096);

  std::vector<Finding> findings = MustLint(p);
  EXPECT_GE(CountPass(findings, "helper-contract", LintSeverity::kWarning), 2u);
  EXPECT_GE(CountPass(findings, "helper-contract", LintSeverity::kError), 1u);
}

TEST(LintHelperContract, DetectsSizeArgumentOutOfRange) {
  Assembler a;
  a.MovImm(R3, 600);  // sk_lookup size argument exceeds the 512-byte stack
  size_t call_pc = a.CurrentPc();
  a.Call(kHelperSkLookupUdp);
  a.Mov(R1, R0);
  a.Call(kHelperSkRelease);
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a);

  std::vector<Finding> findings = MustLint(p);
  bool found = false;
  for (const Finding& f : findings) {
    found |= f.pass == "helper-contract" && f.pc == call_pc &&
             f.severity == LintSeverity::kError;
  }
  EXPECT_TRUE(found);
}

// ---- zero false positives on clean extensions -------------------------------

TEST(Lint, SeedCounterExampleIsClean) {
  // Mirror of examples/counter.kasm (the seed example extension).
  const char* kSrc = R"(
.name  saturating_counter
.hook  tracepoint
.mode  kflex
.heap  1048576
  r2 = *(u64*)(r1 + 0)
  if r2 != 0 goto have_amount
  r2 = 1
have_amount:
  r3 = heap 64
  r4 = *(u64*)(r3 + 0)
  r4 += r2
  if r4 <= 100 goto store
  r4 = 100
store:
  *(u64*)(r3 + 0) = r4
  r0 = r4
  exit
)";
  auto p = ParseTextProgram(kSrc);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  auto analysis = Verify(*p, VerifyOptions{});
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();

  std::vector<Finding> findings = MustLint(*p, &*analysis);
  for (const Finding& f : findings) {
    if (f.pass == "lint-test-custom") {
      continue;  // registered by the registry test above; fires everywhere
    }
    ADD_FAILURE() << "false positive: pc " << f.pc << " [" << f.pass << "] " << f.message;
  }
}

TEST(Lint, WorksWithoutAnalysisOnRejectedProgram) {
  // Verifier rejects this (ref leak), lint must still run and explain why.
  Assembler a;
  a.Call(kHelperSkLookupUdp);
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a);
  auto analysis = Verify(p, VerifyOptions{});
  EXPECT_FALSE(analysis.ok());

  std::vector<Finding> findings = MustLint(p, nullptr);
  EXPECT_GE(CountPass(findings, "ref-leak", LintSeverity::kError), 1u);
}

}  // namespace
}  // namespace kflex
