// Stress & exhaustion: cancellation racing concurrent invocations, heap
// exhaustion surfacing as NULL kflex_malloc (not a fault), watchdog with
// several extensions, and allocator behaviour at capacity.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "src/apps/memcached.h"
#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/kernel/kernel.h"
#include "src/kernel/packet.h"

namespace kflex {
namespace {

TEST(Stress, CancellationRacesConcurrentInvocations) {
  constexpr int kThreads = 4;
  RuntimeOptions opts;
  opts.num_cpus = kThreads;
  MockKernel kernel{opts};
  auto driver = KflexMemcachedDriver::Create(kernel);
  ASSERT_TRUE(driver.ok()) << driver.status().ToString();
  for (uint64_t key = 0; key < 256; key++) {
    driver->Set(0, key, "v");
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> served{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads - 1; t++) {
    workers.emplace_back([&, t] {
      uint64_t key = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = driver->Get(t, key++ % 256);
        if (r.served) {
          served.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Deterministic warm-up: wait until the workers have demonstrably served
  // traffic rather than sleeping for a wall-clock interval that may or may
  // not be enough on a loaded CI machine.
  while (served.load(std::memory_order_relaxed) < 8 * (kThreads - 1)) {
    std::this_thread::yield();
  }
  kernel.runtime().Cancel(driver->id());
  // The cancellation lands when a racing GET hits a cancellation point; the
  // workers keep invoking until then, so wait for the unload itself instead
  // of guessing how long propagation takes.
  while (!kernel.runtime().IsUnloaded(driver->id())) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_GT(served.load(), 0u);
  // After the dust settles: extension-wide unload (a chain-walking GET hit a
  // Cp) or at minimum no leaked kernel state.
  EXPECT_TRUE(kernel.Quiescent()) << "references leaked under racing cancellation";
}

TEST(Stress, HeapExhaustionYieldsNullNotFault) {
  // 64 KB heap, 4 KB statics: at most ~14 pages of 128-byte objects.
  MockKernel kernel{RuntimeOptions{1, 1'000'000'000ULL}};
  Assembler a;
  a.MovImm(R1, 128);
  a.Call(kHelperKflexMalloc);
  {
    auto null = a.IfImm(BPF_JEQ, R0, 0);
    a.MovImm(R0, 0);  // exhausted
    a.Exit();
    a.EndIf(null);
  }
  a.StImm(BPF_DW, R0, 0, 7);  // prove the memory is usable
  a.MovImm(R0, 1);
  a.Exit();
  auto p = a.Finish("alloc", Hook::kTracepoint, ExtensionMode::kKflex, 1 << 16);
  ASSERT_TRUE(p.ok());
  LoadOptions lo;
  lo.heap_static_bytes = 256;
  auto id = kernel.runtime().Load(*p, lo);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  uint8_t ctx[64] = {0};
  int successes = 0;
  int failures = 0;
  for (int i = 0; i < 2000; i++) {
    InvokeResult r = kernel.runtime().Invoke(*id, 0, ctx, sizeof(ctx));
    ASSERT_FALSE(r.cancelled) << "exhaustion must not fault";
    if (r.verdict == 1) {
      successes++;
    } else {
      failures++;
    }
  }
  EXPECT_GT(successes, 100) << "the heap fits hundreds of objects";
  EXPECT_GT(failures, 100) << "exhaustion must eventually return NULL";
}

TEST(Stress, WatchdogHandlesMultipleExtensions) {
  RuntimeOptions opts;
  opts.num_cpus = 2;
  opts.quantum_ns = 20'000'000;
  MockKernel kernel{opts};

  Assembler good;
  good.MovImm(R0, 1);
  good.Exit();
  auto good_id = kernel.runtime().Load(
      good.Finish("g", Hook::kTracepoint, ExtensionMode::kKflex, 1 << 20).value(),
      LoadOptions{});
  ASSERT_TRUE(good_id.ok());

  Assembler bad;
  bad.MovImm(R0, 0);
  auto head = bad.NewLabel();
  bad.Bind(head);
  bad.AddImm(R0, 1);
  bad.Jmp(head);
  auto bad_id = kernel.runtime().Load(
      bad.Finish("b", Hook::kXdp, ExtensionMode::kKflex, 1 << 20).value(), LoadOptions{});
  ASSERT_TRUE(bad_id.ok());
  ASSERT_TRUE(kernel.Attach(*bad_id).ok());

  kernel.runtime().StartWatchdog();
  // Run the healthy extension from another thread while the runaway one
  // occupies this one until the watchdog fires.
  std::thread healthy([&kernel, good_id] {
    uint8_t ctx[64] = {0};
    for (int i = 0; i < 200; i++) {
      InvokeResult r = kernel.runtime().Invoke(*good_id, 1, ctx, sizeof(ctx));
      EXPECT_FALSE(r.cancelled);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  KvPacket pkt;
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  healthy.join();
  kernel.runtime().StopWatchdog();

  EXPECT_TRUE(r.cancelled);
  EXPECT_TRUE(kernel.runtime().IsUnloaded(*bad_id));
  EXPECT_FALSE(kernel.runtime().IsUnloaded(*good_id))
      << "cancellation scope is per extension, not per runtime";
}

TEST(Stress, RepeatedCancelResetCycles) {
  MockKernel kernel;
  Assembler a;
  a.MovImm(R0, 0);
  auto head = a.NewLabel();
  a.Bind(head);
  a.AddImm(R0, 1);
  a.Jmp(head);
  auto id = kernel.runtime().Load(
      a.Finish("l", Hook::kXdp, ExtensionMode::kKflex, 1 << 20).value(), LoadOptions{});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(kernel.Attach(*id).ok());
  KvPacket pkt;
  for (int cycle = 0; cycle < 50; cycle++) {
    kernel.runtime().Cancel(*id);
    InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
    ASSERT_TRUE(r.cancelled);
    ASSERT_TRUE(kernel.runtime().IsUnloaded(*id));
    kernel.runtime().Reset(*id);
    ASSERT_FALSE(kernel.runtime().IsUnloaded(*id));
  }
  auto stats = kernel.runtime().GetStats(*id);
  EXPECT_EQ(stats.cancellations, 50u);
  EXPECT_TRUE(kernel.Quiescent());
}

}  // namespace
}  // namespace kflex
