// Memcached offloads: KFlex full offload vs the user-space oracle, the BMC
// look-aside cache behaviour, socket-reference hygiene on the hot path, and
// instrumentation-flavour equivalence.
#include "src/apps/memcached.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/base/zipf.h"
#include "src/uapi/user_heap.h"

namespace kflex {
namespace {

TEST(KflexMemcached, SetGetDelRoundTrip) {
  MockKernel kernel;
  auto driver = KflexMemcachedDriver::Create(kernel);
  ASSERT_TRUE(driver.ok()) << driver.status().ToString();

  auto set = driver->Set(0, 7, "hello-kflex");
  EXPECT_TRUE(set.served);
  EXPECT_TRUE(set.hit);

  auto get = driver->Get(0, 7);
  EXPECT_TRUE(get.served);
  ASSERT_TRUE(get.hit);
  EXPECT_EQ(get.value.substr(0, 11), "hello-kflex");

  auto miss = driver->Get(0, 8);
  EXPECT_TRUE(miss.served);
  EXPECT_FALSE(miss.hit);

  EXPECT_TRUE(driver->Del(0, 7).hit);
  EXPECT_FALSE(driver->Get(0, 7).hit);
  EXPECT_FALSE(driver->Del(0, 7).hit);

  // The hot path acquires and releases a socket reference per request.
  EXPECT_TRUE(kernel.Quiescent());
}

TEST(KflexMemcached, RandomizedAgainstOracle) {
  MockKernel kernel;
  auto driver = KflexMemcachedDriver::Create(kernel);
  ASSERT_TRUE(driver.ok()) << driver.status().ToString();
  UserMemcached oracle;

  Rng rng(2024);
  for (int i = 0; i < 5000; i++) {
    uint64_t key = rng.NextBounded(200);
    int cpu = static_cast<int>(rng.NextBounded(4));
    switch (rng.NextBounded(3)) {
      case 0: {
        std::string value = "v" + std::to_string(rng.NextBounded(100000));
        ASSERT_TRUE(driver->Set(cpu, key, value).hit);
        oracle.Set(key, value);
        break;
      }
      case 1: {
        auto got = driver->Get(cpu, key);
        auto want = oracle.Get(key);
        ASSERT_EQ(got.hit, want.has_value()) << "key " << key << " op " << i;
        if (want.has_value()) {
          ASSERT_EQ(got.value.substr(0, want->size()), *want);
        }
        break;
      }
      case 2: {
        ASSERT_EQ(driver->Del(cpu, key).hit, oracle.Del(key));
        break;
      }
    }
  }
  EXPECT_TRUE(kernel.Quiescent());
}

TEST(KflexMemcached, AllInstrumentationFlavoursAgree) {
  for (int flavour = 0; flavour < 3; flavour++) {
    KieOptions kie;
    if (flavour == 1) {
      kie.performance_mode = true;
    }
    if (flavour == 2) {
      kie.sfi = false;
      kie.cancellation = false;
    }
    MockKernel kernel;
    auto driver = KflexMemcachedDriver::Create(kernel, {}, kie);
    ASSERT_TRUE(driver.ok()) << driver.status().ToString();
    ASSERT_TRUE(driver->Set(0, 1, "abc").hit);
    auto got = driver->Get(0, 1);
    ASSERT_TRUE(got.hit);
    EXPECT_EQ(got.value.substr(0, 3), "abc");
  }
}

TEST(KflexMemcached, InstrumentationAddsBoundedOverhead) {
  MockKernel kflex_kernel;
  auto kflex = KflexMemcachedDriver::Create(kflex_kernel);
  ASSERT_TRUE(kflex.ok());
  KieOptions kmod_opts;
  kmod_opts.sfi = false;
  kmod_opts.cancellation = false;
  MockKernel kmod_kernel;
  auto kmod = KflexMemcachedDriver::Create(kmod_kernel, {}, kmod_opts);
  ASSERT_TRUE(kmod.ok());

  kflex->Set(0, 5, "x");
  kmod->Set(0, 5, "x");
  auto a = kflex->Get(0, 5);
  auto b = kmod->Get(0, 5);
  ASSERT_TRUE(a.hit);
  ASSERT_TRUE(b.hit);
  EXPECT_GT(a.insns, b.insns);                       // guards cost something
  EXPECT_LT(a.insns, b.insns + b.insns / 2 + 16);    // ...but bounded (<~50%)
}

TEST(KflexMemcached, TranslateOnStorePublishesUserPointers) {
  KieOptions kie;
  kie.translate_on_store = true;
  MockKernel kernel;
  auto driver = KflexMemcachedDriver::Create(kernel, {}, kie);
  ASSERT_TRUE(driver.ok()) << driver.status().ToString();
  ASSERT_TRUE(driver->Set(0, 77, "shared").hit);

  // Walk the table from "user space" through the mapped heap: the stored
  // bucket pointer must be a valid user VA (§3.4).
  ExtensionHeap* heap = kernel.runtime().heap(driver->id());
  UserHeapView view(heap);
  auto key = MakeKey32(77);
  uint64_t hash = 0;
  {
    // Same folding the extension uses.
    uint64_t words[4];
    std::memcpy(words, key.data(), 32);
    hash = words[0];
    for (int w = 1; w < 4; w++) {
      hash = (hash * 0x100000001B3ULL) ^ words[w];
    }
    uint64_t s = hash;
    s ^= s >> 30;
    s *= 0xBF58476D1CE4E5B9ULL;
    s ^= s >> 27;
    s *= 0x94D049BB133111EBULL;
    s ^= s >> 31;
    hash = s;
  }
  uint64_t bucket = MemcachedLayout::kBucketsOff +
                    (hash & (MemcachedLayout::kNumBuckets - 1)) * 8;
  uint64_t node_user_va = view.LoadPointerAt(bucket);
  ASSERT_NE(node_user_va, 0u);
  EXPECT_TRUE(view.Contains(node_user_va)) << "stored pointer is not a user VA";
  std::array<uint8_t, 32> stored_key{};
  ASSERT_TRUE(view.LoadBytes(node_user_va + MemcachedLayout::kNodeKey, stored_key.data(), 32));
  EXPECT_EQ(stored_key, key);
}

TEST(Bmc, GetHitsAfterCacheFill) {
  MockKernel kernel;
  auto bmc = BmcDriver::Create(kernel);
  ASSERT_TRUE(bmc.ok()) << bmc.status().ToString();

  bmc->Set(0, 9, "bmc-value");
  auto first = bmc->Get(0, 9);  // miss at XDP (SET invalidated), user space serves
  EXPECT_FALSE(first.served_at_xdp);
  EXPECT_TRUE(first.hit);
  EXPECT_EQ(first.value, "bmc-value");

  auto second = bmc->Get(0, 9);  // now cached at XDP
  EXPECT_TRUE(second.served_at_xdp);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(second.value.substr(0, 9), "bmc-value");

  bmc->Set(0, 9, "new");  // invalidates
  auto third = bmc->Get(0, 9);
  EXPECT_FALSE(third.served_at_xdp);
  EXPECT_EQ(third.value, "new");
}

TEST(Bmc, RandomizedAgainstOracle) {
  MockKernel kernel;
  auto bmc = BmcDriver::Create(kernel);
  ASSERT_TRUE(bmc.ok());
  UserMemcached oracle;
  Rng rng(31337);
  for (int i = 0; i < 3000; i++) {
    uint64_t key = rng.NextBounded(100);
    if (rng.NextBounded(10) < 3) {
      std::string value = "v" + std::to_string(rng.Next() % 1000);
      bmc->Set(0, key, value);
      oracle.Set(key, value);
    } else {
      auto got = bmc->Get(0, key);
      auto want = oracle.Get(key);
      ASSERT_EQ(got.hit, want.has_value()) << "key " << key;
      if (want.has_value()) {
        ASSERT_EQ(got.value.substr(0, want->size()), *want) << "key " << key;
      }
    }
  }
}

TEST(Bmc, StrictEbpfModeVerifies) {
  // The BMC program must pass the strict eBPF-mode verifier: bounded code,
  // kernel maps only, no heap.
  Program p = BuildBmcProgram(1);
  VerifyOptions opts;
  opts.maps.push_back(MapDescriptor{1, 32, kBmcValueSize, 1 << 16});
  auto analysis = Verify(p, opts);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  EXPECT_TRUE(analysis->cancellation_back_edges.empty());
  EXPECT_EQ(analysis->heap_access_insns, 0u);
}

}  // namespace
}  // namespace kflex
