// Sharded-dispatch end-to-end tests (docs/sharding.md), the `shard` ctest
// tier. The tsan preset builds this binary with -fsanitize=thread and runs
// it together with the concurrency tier, so every scenario here must be
// data-race-free by construction:
//
//  * steering determinism: a key hashes to one shard, forever;
//  * certificate-gated placement: race-free / lock-protected programs
//    replicate across shards, serial-only programs pin to a home shard and
//    steered-elsewhere requests are forwarded (counted + traced);
//  * batched dispatch computes exactly what one-at-a-time Runtime::Invoke
//    computes;
//  * quiesced unload drains in-flight batches and leaves the invariant
//    sweep green;
//  * a 4-shard mixed-extension run with multiple producers (the MPMC
//    ingress), stealing and forwarding all active.
//
// Interpreter engine only (the default): JIT code is not TSan-instrumented.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/kernel/packet.h"
#include "src/obs/obs.h"
#include "src/shard/ingress.h"
#include "src/shard/shard.h"
#include "src/shard/steering.h"

namespace kflex {
namespace {

constexpr uint64_t kHeapSize = 1 << 20;
// Shared heap words, past the reserved metadata at the front of the heap.
constexpr uint64_t kLockOff = 64;
constexpr uint64_t kCounterOff = 72;

Program MustBuild(Assembler& a, const char* name) {
  auto p = a.Finish(name, Hook::kXdp, ExtensionMode::kKflex, kHeapSize);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

// counter += 1 via the atomic fetch-add instruction: certified race-free.
Program AtomicCounterProgram() {
  Assembler a;
  a.LoadHeapAddr(R2, kCounterOff);
  a.MovImm(R3, 1);
  a.AtomicAdd(BPF_DW, R2, 0, R3);
  a.MovImm(R0, 0);
  a.Exit();
  return MustBuild(a, "atomic_counter");
}

// lock; counter++ (plain load/add/store); unlock: certified lock-protected.
Program LockedCounterProgram() {
  Assembler a;
  a.LoadHeapAddr(R1, kLockOff);
  a.Call(kHelperKflexSpinLock);
  a.LoadHeapAddr(R2, kCounterOff);
  a.Ldx(BPF_DW, R3, R2, 0);
  a.AddImm(R3, 1);
  a.Stx(BPF_DW, R2, 0, R3);
  a.LoadHeapAddr(R1, kLockOff);
  a.Call(kHelperKflexSpinUnlock);
  a.MovImm(R0, 0);
  a.Exit();
  return MustBuild(a, "locked_counter");
}

// counter++ with no lock and no atomic: certified serial-only, so the
// dispatcher pins it and the race never materializes.
Program RacyCounterProgram() {
  Assembler a;
  a.LoadHeapAddr(R2, kCounterOff);
  a.Ldx(BPF_DW, R3, R2, 0);
  a.AddImm(R3, 1);
  a.Stx(BPF_DW, R2, 0, R3);
  a.MovImm(R0, 0);
  a.Exit();
  return MustBuild(a, "racy_counter");
}

LoadOptions StaticHeapOptions() {
  LoadOptions lo;
  lo.heap_static_bytes = 128;
  return lo;
}

uint64_t ReadHeapWord(Runtime& runtime, ExtensionId id, uint64_t off) {
  uint64_t v = 0;
  std::memcpy(&v, runtime.heap(id)->HostAt(off), sizeof(v));
  return v;
}

uint64_t SumCounters(ShardedRuntime& sharded, ShardExtId id) {
  uint64_t total = 0;
  for (ExtensionId rid : sharded.placement(id).replicas) {
    total += ReadHeapWord(sharded.runtime(), rid, kCounterOff);
  }
  return total;
}

// Completion callback: counts completed-attached requests.
void CountDone(const InvokeResult& result, void* user) {
  if (result.attached && !result.cancelled) {
    static_cast<std::atomic<uint64_t>*>(user)->fetch_add(1, std::memory_order_relaxed);
  }
}

ShardRequest CountedRequest(ShardExtId ext, uint64_t flow_hash, uint8_t* ctx,
                            uint32_t ctx_size, std::atomic<uint64_t>* done) {
  ShardRequest req;
  req.ext = ext;
  req.ctx = ctx;
  req.ctx_size = ctx_size;
  req.flow_hash = flow_hash;
  req.on_done = CountDone;
  req.user = done;
  return req;
}

// ---- steering ---------------------------------------------------------------

TEST(Steering, DeterministicPerKey) {
  for (uint64_t key = 0; key < 64; key++) {
    uint64_t h = ShardHashKey(key);
    EXPECT_EQ(h, ShardHashKey(key));
    for (int n : {1, 2, 4, 8}) {
      int shard = ShardForHash(h, n);
      EXPECT_EQ(shard, ShardForHash(h, n)) << "steering must be a pure function";
      EXPECT_GE(shard, 0);
      EXPECT_LT(shard, n);
    }
  }
}

TEST(Steering, KvCtxHashesKeyBytesAndFallsBackToTuple) {
  KvPacket a, b, c;
  a.SetKeyU64(42);
  b.SetKeyU64(42);
  b.SetTuple(0x0a000001, 1111, 11211);  // different flow, same key
  c.SetKeyU64(43);
  EXPECT_EQ(ShardHashKvCtx(a.data(), a.size()), ShardHashKvCtx(b.data(), b.size()))
      << "key-carrying requests steer by key, not by 5-tuple";
  EXPECT_NE(ShardHashKvCtx(a.data(), a.size()), ShardHashKvCtx(c.data(), c.size()));

  KvPacket keyless1, keyless2;
  keyless1.SetTuple(0x0a000001, 1111, 80);
  keyless2.SetTuple(0x0a000002, 2222, 80);
  EXPECT_NE(ShardHashKvCtx(keyless1.data(), keyless1.size()),
            ShardHashKvCtx(keyless2.data(), keyless2.size()));
}

TEST(Steering, SpreadsAcrossShards) {
  std::set<int> hit;
  for (uint64_t key = 0; key < 1000; key++) {
    hit.insert(ShardForHash(ShardHashKey(key), 8));
  }
  EXPECT_EQ(hit.size(), 8u) << "1000 keys must reach all 8 shards";
}

// ---- the ingress ring -------------------------------------------------------

TEST(Ingress, FifoBoundedNonBlocking) {
  IngressQueue<int> q(8);
  EXPECT_TRUE(q.EmptyApprox());
  int v = 0;
  EXPECT_FALSE(q.Pop(&v));
  for (int i = 0; i < 8; i++) {
    EXPECT_TRUE(q.Push(i));
  }
  EXPECT_FALSE(q.Push(99)) << "full ring must fail the push, not block";
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(q.Pop(&v));
    EXPECT_EQ(v, i) << "single-consumer drain preserves FIFO order";
  }
  EXPECT_FALSE(q.Pop(&v));
}

TEST(Ingress, MultiProducerCountsExact) {
  IngressQueue<int> q(1024);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; p++) {
    producers.emplace_back([&q] {
      for (int i = 0; i < kPerProducer; i++) {
        while (!q.Push(1)) {
          std::this_thread::yield();
        }
      }
    });
  }
  int drained = 0;
  int v = 0;
  while (drained < kProducers * kPerProducer) {
    if (q.Pop(&v)) {
      drained += v;
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& t : producers) {
    t.join();
  }
  EXPECT_EQ(drained, kProducers * kPerProducer);
  EXPECT_TRUE(q.EmptyApprox());
}

// ---- certificate-gated placement --------------------------------------------

TEST(Placement, CertificateGated) {
  ShardedRuntimeOptions opts;
  opts.num_shards = 4;
  ShardedRuntime sharded{opts};

  auto atomic_id = sharded.Load(AtomicCounterProgram(), StaticHeapOptions());
  ASSERT_TRUE(atomic_id.ok()) << atomic_id.status().ToString();
  const ShardPlacement& atomic_place = sharded.placement(*atomic_id);
  EXPECT_EQ(atomic_place.safety, ShardSafety::kRaceFree);
  EXPECT_TRUE(atomic_place.replicated);
  EXPECT_EQ(atomic_place.replicas.size(), 4u);

  auto locked_id = sharded.Load(LockedCounterProgram(), StaticHeapOptions());
  ASSERT_TRUE(locked_id.ok()) << locked_id.status().ToString();
  const ShardPlacement& locked_place = sharded.placement(*locked_id);
  EXPECT_EQ(locked_place.safety, ShardSafety::kLockProtected);
  EXPECT_TRUE(locked_place.replicated);
  EXPECT_EQ(locked_place.replicas.size(), 4u);

  auto racy_id = sharded.Load(RacyCounterProgram(), StaticHeapOptions());
  ASSERT_TRUE(racy_id.ok()) << racy_id.status().ToString();
  const ShardPlacement& racy_place = sharded.placement(*racy_id);
  EXPECT_EQ(racy_place.safety, ShardSafety::kSerialOnly);
  EXPECT_FALSE(racy_place.replicated);
  EXPECT_EQ(racy_place.replicas.size(), 1u);
  EXPECT_GE(racy_place.home_shard, 0);
  EXPECT_LT(racy_place.home_shard, 4);

  // Replicas are distinct extensions with distinct heaps (per-shard state).
  std::set<ExtensionId> distinct(atomic_place.replicas.begin(),
                                 atomic_place.replicas.end());
  EXPECT_EQ(distinct.size(), 4u);
  EXPECT_NE(sharded.runtime().heap(atomic_place.replicas[0]),
            sharded.runtime().heap(atomic_place.replicas[1]));
}

TEST(Placement, SerialOnlyPinsAndForwards) {
  ScopedObsEnable obs{/*trace=*/true, /*metrics=*/false};
  ShardedRuntimeOptions opts;
  opts.num_shards = 4;
  ShardedRuntime sharded{opts};
  auto id = sharded.Load(RacyCounterProgram(), StaticHeapOptions());
  ASSERT_TRUE(id.ok());
  const ShardPlacement& place = sharded.placement(*id);
  const int home = place.home_shard;

  constexpr uint64_t kRequests = 200;
  std::atomic<uint64_t> done{0};
  uint8_t ctx[64] = {0};
  for (uint64_t i = 0; i < kRequests; i++) {
    ASSERT_TRUE(sharded.Submit(CountedRequest(*id, ShardHashKey(i), ctx, sizeof(ctx), &done)));
  }
  sharded.Flush();

  EXPECT_EQ(done.load(), kRequests);
  EXPECT_EQ(SumCounters(sharded, *id), kRequests)
      << "a pinned extension must count exactly: no concurrent entry";

  std::vector<ShardStats> stats = sharded.SnapshotStats();
  uint64_t forwarded = 0;
  for (int s = 0; s < 4; s++) {
    forwarded += stats[s].forwarded;
    if (s != home) {
      EXPECT_EQ(stats[s].invoked, 0u)
          << "serial-only invocations must only run on the home shard";
    }
  }
  EXPECT_EQ(stats[home].invoked, kRequests);
  EXPECT_GT(forwarded, 0u) << "requests steered off-home must be forwarded";

  bool saw_forward_event = false;
  for (const TraceEvent& e : Obs::Instance().SnapshotTrace()) {
    if (e.code == static_cast<uint16_t>(ObsEvent::kShardForward)) {
      saw_forward_event = true;
      EXPECT_EQ(e.a1, static_cast<uint64_t>(home));
    }
  }
  EXPECT_TRUE(saw_forward_event);
}

TEST(Placement, ReplicatedCountsExactAcrossShards) {
  ShardedRuntimeOptions opts;
  opts.num_shards = 4;
  ShardedRuntime sharded{opts};
  auto id = sharded.Load(AtomicCounterProgram(), StaticHeapOptions());
  ASSERT_TRUE(id.ok());

  constexpr uint64_t kRequests = 400;
  std::atomic<uint64_t> done{0};
  uint8_t ctx[64] = {0};
  for (uint64_t i = 0; i < kRequests; i++) {
    ASSERT_TRUE(sharded.Submit(CountedRequest(*id, ShardHashKey(i), ctx, sizeof(ctx), &done)));
  }
  sharded.Flush();
  EXPECT_EQ(done.load(), kRequests);
  EXPECT_EQ(SumCounters(sharded, *id), kRequests)
      << "replicated per-shard counters must sum to the request count";
}

// ---- batched dispatch equivalence -------------------------------------------

TEST(Batching, EquivalentToOneAtATimeInvoke) {
  constexpr uint64_t kRequests = 256;
  uint8_t ctx[64] = {0};

  // Reference: one-at-a-time Runtime::Invoke on a single CPU.
  RuntimeOptions ropts;
  ropts.num_cpus = 1;
  Runtime reference{ropts};
  auto ref_id = reference.Load(LockedCounterProgram(), StaticHeapOptions());
  ASSERT_TRUE(ref_id.ok());
  for (uint64_t i = 0; i < kRequests; i++) {
    InvokeResult r = reference.Invoke(*ref_id, 0, ctx, sizeof(ctx));
    ASSERT_TRUE(r.attached);
    ASSERT_EQ(r.outcome, VmResult::Outcome::kOk);
  }
  uint64_t ref_count = ReadHeapWord(reference, *ref_id, kCounterOff);
  ASSERT_EQ(ref_count, kRequests);

  // Batched: same program, same request count, through rings and batches.
  ShardedRuntimeOptions opts;
  opts.num_shards = 2;
  opts.batch_size = 8;
  ShardedRuntime sharded{opts};
  auto id = sharded.Load(LockedCounterProgram(), StaticHeapOptions());
  ASSERT_TRUE(id.ok());
  std::atomic<uint64_t> done{0};
  for (uint64_t i = 0; i < kRequests; i++) {
    InvokeResult r = sharded.InvokeSync(*id, ShardHashKey(i), ctx, sizeof(ctx));
    ASSERT_TRUE(r.attached);
    ASSERT_EQ(r.outcome, VmResult::Outcome::kOk);
    ASSERT_EQ(r.verdict, 0);
  }
  (void)done;
  EXPECT_EQ(SumCounters(sharded, *id), ref_count)
      << "batched dispatch must compute exactly what serial Invoke computes";

  // Batch accounting: every invocation belongs to a batch, occupancy never
  // exceeds the configured size.
  uint64_t invoked = 0, occupancy = 0, batches = 0;
  for (const ShardStats& s : sharded.SnapshotStats()) {
    invoked += s.invoked;
    occupancy += s.batch_occupancy_sum;
    batches += s.batches;
    if (s.batches > 0) {
      EXPECT_LE(s.batch_occupancy_sum, s.batches * 8);
    }
  }
  EXPECT_EQ(invoked, kRequests);
  EXPECT_EQ(occupancy, invoked);
  EXPECT_GT(batches, 0u);
}

// ---- quiesced unload --------------------------------------------------------

TEST(Unload, QuiescedDrainsInFlightBatches) {
  ShardedRuntimeOptions opts;
  opts.num_shards = 2;
  opts.batch_size = 8;
  ShardedRuntime sharded{opts};
  auto id = sharded.Load(LockedCounterProgram(), StaticHeapOptions());
  ASSERT_TRUE(id.ok());

  // Saturate the rings, then unload while workers are mid-drain.
  std::atomic<uint64_t> done{0};
  uint8_t ctx[64] = {0};
  uint64_t accepted = 0;
  for (uint64_t i = 0; i < 600; i++) {
    if (sharded.Submit(CountedRequest(*id, ShardHashKey(i), ctx, sizeof(ctx), &done))) {
      accepted++;
    }
  }
  sharded.UnloadQuiesced(*id);

  // Every accepted request completed before the detach; none ran after.
  EXPECT_EQ(done.load(), accepted);
  EXPECT_EQ(SumCounters(sharded, *id), accepted);
  for (ExtensionId rid : sharded.placement(*id).replicas) {
    EXPECT_TRUE(sharded.runtime().IsUnloaded(rid));
    InvariantReport sweep = sharded.runtime().SweepInvariants(rid);
    EXPECT_TRUE(sweep.ok()) << sweep.ToString();
  }

  // Post-unload submits are rejected, not enqueued.
  EXPECT_FALSE(sharded.Submit(CountedRequest(*id, 1, ctx, sizeof(ctx), &done)));
  InvokeResult r = sharded.InvokeSync(*id, 2, ctx, sizeof(ctx));
  EXPECT_FALSE(r.attached);
}

// ---- the 4-shard mixed run (the tsan-preset scenario) -----------------------

TEST(FourShards, MixedExtensionsMultiProducer) {
  ShardedRuntimeOptions opts;
  opts.num_shards = 4;
  opts.batch_size = 16;
  ShardedRuntime sharded{opts};
  auto atomic_id = sharded.Load(AtomicCounterProgram(), StaticHeapOptions());
  auto locked_id = sharded.Load(LockedCounterProgram(), StaticHeapOptions());
  auto racy_id = sharded.Load(RacyCounterProgram(), StaticHeapOptions());
  ASSERT_TRUE(atomic_id.ok() && locked_id.ok() && racy_id.ok());

  constexpr int kProducers = 2;
  constexpr uint64_t kPerProducer = 300;  // per extension
  std::atomic<uint64_t> done{0};
  std::atomic<uint64_t> accepted{0};
  static uint8_t ctx[kProducers][64];  // workers read it after Submit returns
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; p++) {
    producers.emplace_back([&, p] {
      ShardExtId exts[3] = {*atomic_id, *locked_id, *racy_id};
      for (uint64_t i = 0; i < kPerProducer * 3; i++) {
        uint64_t key = static_cast<uint64_t>(p) * 100003 + i;
        ShardRequest req =
            CountedRequest(exts[i % 3], ShardHashKey(key), ctx[p], sizeof(ctx[p]), &done);
        while (!sharded.Submit(req)) {
          std::this_thread::yield();  // ring momentarily full: retry
        }
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  sharded.Flush();

  const uint64_t expected = kProducers * kPerProducer;
  EXPECT_EQ(done.load(), 3 * expected);
  EXPECT_EQ(SumCounters(sharded, *atomic_id), expected);
  EXPECT_EQ(SumCounters(sharded, *locked_id), expected);
  EXPECT_EQ(SumCounters(sharded, *racy_id), expected)
      << "the serial-only extension must stay exact: pinning prevented the race";

  uint64_t invoked = 0;
  for (const ShardStats& s : sharded.SnapshotStats()) {
    invoked += s.invoked;
    EXPECT_EQ(s.queue_depth, 0u);
  }
  EXPECT_EQ(invoked, 3 * expected);

  for (ShardExtId id : {*atomic_id, *locked_id, *racy_id}) {
    for (ExtensionId rid : sharded.placement(id).replicas) {
      InvariantReport sweep = sharded.runtime().SweepInvariants(rid);
      EXPECT_TRUE(sweep.ok()) << sweep.ToString();
    }
  }
}

}  // namespace
}  // namespace kflex
