// Chaos harness: every registered fault point, under every execution engine
// (reference interpreter, optimized interpreter, JIT), against three
// workloads (guarded scatter + map counter, memcached GET/SET, rb-tree data
// structure). Asserts zero crashes, clean error returns, recorded EngineInfo
// fallback reasons for injected code-cache refusals, and a green
// post-fault invariant sweep after every combination. Any failure reproduces
// from the printed --fault=point:spec string (plus engine name) alone: the
// schedules are pure functions of (policy, hit index).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/apps/ds/ds.h"
#include "src/apps/ds/harness.h"
#include "src/apps/memcached.h"
#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/fault/fault.h"
#include "src/jit/codegen.h"
#include "src/kernel/kernel.h"
#include "src/shard/shard.h"

namespace kflex {
namespace {

// ---- the coverage matrix ----------------------------------------------------

// One deterministic spec per registered fault point. ChaosSelfCheck fails if
// this list and the FaultRegistry catalog ever drift apart, so adding a
// KFLEX_FAULT_FIRE site forces adding matrix coverage here.
struct PointSpec {
  const char* point;
  const char* spec;  // the full --fault argument
};
constexpr PointSpec kCoveredPoints[] = {
    {"alloc.slab", "alloc.slab:nth=1"},
    {"alloc.percpu", "alloc.percpu:nth=2"},
    {"heap.pagein", "heap.pagein:every=5"},
    {"heap.guard", "heap.guard:nth=4"},
    {"jit.mmap", "jit.mmap:nth=1"},
    {"jit.mprotect", "jit.mprotect:nth=1"},
    {"map.update", "map.update:every=2"},
    {"helper.ret_err", "helper.ret_err:prob=0.25,seed=1234"},
    {"lock.delay", "lock.delay:every=1"},
    {"shard.enqueue", "shard.enqueue:every=3"},
};

struct EngineConfig {
  const char* name;
  EngineChoice choice;
};

std::vector<EngineConfig> Engines() {
  std::vector<EngineConfig> engines;
  engines.push_back({"ref-interp", {/*optimize=*/false, ExecEngine::kInterp, {}}});
  engines.push_back({"opt-interp", {/*optimize=*/true, ExecEngine::kInterp, {}}});
  // fast_paths=false sends every JIT memory access through the
  // interpreter-shared translation stub, so heap.* points fire on the same
  // schedule as the interpreter legs.
  JitOptions jit;
  jit.fast_paths = false;
  engines.push_back({"jit", {/*optimize=*/true, ExecEngine::kJit, jit}});
  return engines;
}

uint64_t FailsOf(const char* point) {
  FaultPoint* p = FaultRegistry::Instance().Find(point);
  return p != nullptr ? p->fails() : 0;
}

// Injected faults must surface as one of the runtime's documented
// degradation outcomes, never as a crash or an undocumented error.
void ExpectCleanResult(const InvokeResult& r) {
  if (!r.cancelled) {
    EXPECT_EQ(r.outcome, VmResult::Outcome::kOk);
    return;
  }
  switch (r.outcome) {
    case VmResult::Outcome::kFault:
      EXPECT_TRUE(r.fault_kind == MemFaultKind::kNotPresent ||
                  r.fault_kind == MemFaultKind::kGuardZone ||
                  r.fault_kind == MemFaultKind::kTerminate)
          << "unexpected fault kind " << static_cast<int>(r.fault_kind);
      break;
    case VmResult::Outcome::kHelperCancel:
    case VmResult::Outcome::kHelperFault:
      break;  // documented cancellation outcomes
    default:
      ADD_FAILURE() << "unclean outcome " << VmOutcomeName(r.outcome);
  }
}

// When a JIT engine was requested, the load must always succeed; if the
// (possibly injected) code cache refused, the fallback reason is recorded.
void ExpectEngineRecorded(Runtime& runtime, ExtensionId id, const EngineConfig& engine,
                          const char* point) {
  EngineInfo ei = runtime.engine_info(id);
  EXPECT_EQ(ei.requested, engine.choice.engine);
  if (ei.requested == ExecEngine::kJit && ei.used != ExecEngine::kJit) {
    EXPECT_FALSE(ei.fallback_reason.empty())
        << "silent JIT fallback with " << point << " armed";
  }
  if (JitHostSupported() && ei.requested == ExecEngine::kJit &&
      (std::string(point) == "jit.mmap" || std::string(point) == "jit.mprotect")) {
    // The injected refusal (nth=1, armed before Load) must have forced the
    // interpreter and said why.
    EXPECT_EQ(ei.used, ExecEngine::kInterp);
    EXPECT_NE(ei.fallback_reason.find(std::string(point) == "jit.mmap" ? "(mmap)"
                                                                       : "(mprotect)"),
              std::string::npos)
        << "fallback reason: " << ei.fallback_reason;
  }
}

// ---- workload 1: guarded scatter + map counter ------------------------------

// The microbench scatter kernel plus one bpf map update per invocation so
// the map.update and helper.ret_err points are reachable from this workload.
Program ScatterProgram(uint32_t map_id) {
  Assembler a;
  a.Mov(R9, R1);  // save ctx across the helper call
  a.StImm(BPF_W, R10, -4, 0);
  a.StImm(BPF_DW, R10, -16, 1);
  a.LoadMapPtr(R1, map_id);
  a.Mov(R2, R10);
  a.AddImm(R2, -4);
  a.Mov(R3, R10);
  a.AddImm(R3, -16);
  a.MovImm(R4, 0);
  a.Call(kHelperMapUpdateElem);
  a.Ldx(BPF_W, R6, R9, 0);
  a.LoadHeapAddr(R7, 64);
  a.Add(R7, R6);
  a.MovImm(R4, 64);
  auto loop = a.LoopBegin();
  a.LoopBreakIfImm(loop, BPF_JEQ, R4, 0);
  a.StImm(BPF_DW, R7, 0, 1);
  a.StImm(BPF_DW, R7, 8, 2);
  a.StImm(BPF_DW, R7, 16, 3);
  a.SubImm(R4, 1);
  a.LoopEnd(loop);
  a.MovImm(R0, 1);
  a.Exit();
  auto p = a.Finish("chaos_scatter", Hook::kTracepoint, ExtensionMode::kKflex, 1 << 20);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

void RunGuardedScatter(const PointSpec& point, const EngineConfig& engine) {
  RuntimeOptions opts;
  opts.num_cpus = 1;
  opts.quantum_ns = 500'000'000ULL;
  Runtime runtime{opts};
  auto desc = runtime.maps().CreateArray(4, 8, 8);
  ASSERT_TRUE(desc.ok());

  // Armed before Load so the jit.* points hit the code cache at compile time.
  ScopedFaultInjection faults{point.spec};
  LoadOptions lo;
  lo.heap_static_bytes = 128;
  lo.optimize = engine.choice.optimize;
  lo.engine = engine.choice.engine;
  lo.jit = engine.choice.jit;
  auto id = runtime.Load(ScatterProgram(desc->id), lo);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ExpectEngineRecorded(runtime, *id, engine, point.point);

  uint8_t ctx[64] = {0};
  for (int i = 0; i < 6; i++) {
    InvokeResult r = runtime.Invoke(*id, 0, ctx, sizeof(ctx));
    ASSERT_TRUE(r.attached);
    ExpectCleanResult(r);
    InvariantReport sweep = runtime.SweepInvariants(*id);
    EXPECT_TRUE(sweep.ok()) << sweep.ToString();
    if (r.cancelled) {
      runtime.Reset(*id);
    }
  }

  // Points this workload certainly drives must actually have fired.
  std::string p = point.point;
  if (p == "heap.pagein" || p == "heap.guard" || p == "map.update") {
    EXPECT_GT(FailsOf(point.point), 0u) << point.spec << " never fired";
  }
  if (JitHostSupported() && engine.choice.engine == ExecEngine::kJit &&
      (p == "jit.mmap" || p == "jit.mprotect")) {
    EXPECT_GT(FailsOf(point.point), 0u) << point.spec << " never fired at load";
  }
}

TEST(ChaosMatrix, GuardedScatter) {
  for (const EngineConfig& engine : Engines()) {
    for (const PointSpec& point : kCoveredPoints) {
      SCOPED_TRACE(std::string("--fault=") + point.spec + " engine=" + engine.name);
      RunGuardedScatter(point, engine);
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
  }
}

// ---- workload 2: memcached GET/SET ------------------------------------------

void RunMemcached(const PointSpec& point, const EngineConfig& engine) {
  RuntimeOptions opts;
  opts.num_cpus = 1;
  opts.quantum_ns = 500'000'000ULL;  // watchdog net for corrupted chains
  MockKernel kernel{opts};

  ScopedFaultInjection faults{point.spec};
  MemcachedBuildOptions build;
  build.heap_size = 1 << 22;  // small heap: carves happen early
  auto driver = KflexMemcachedDriver::Create(kernel, build, {}, engine.choice);
  ASSERT_TRUE(driver.ok()) << driver.status().ToString();
  ExpectEngineRecorded(kernel.runtime(), driver->id(), engine, point.point);
  kernel.runtime().StartWatchdog();

  for (int i = 0; i < 18; i++) {
    if (kernel.runtime().IsUnloaded(driver->id())) {
      kernel.runtime().Reset(driver->id());
    }
    uint64_t key = static_cast<uint64_t>(i % 6);
    switch (i % 3) {
      case 0:
        driver->Set(0, key, "value-" + std::to_string(key));
        break;
      case 1:
        driver->Get(0, key);
        break;
      default:
        driver->Del(0, key);
        break;
    }
    InvariantReport sweep = kernel.runtime().SweepInvariants(driver->id());
    EXPECT_TRUE(sweep.ok()) << sweep.ToString();
  }
  kernel.runtime().StopWatchdog();
  EXPECT_TRUE(kernel.Quiescent()) << "kernel resource leaked under " << point.spec;

  std::string p = point.point;
  if (p == "heap.pagein" || p == "heap.guard" || p == "alloc.slab" ||
      p == "alloc.percpu" || p == "lock.delay") {
    EXPECT_GT(FailsOf(point.point), 0u) << point.spec << " never fired";
  }
}

TEST(ChaosMatrix, MemcachedGetSet) {
  for (const EngineConfig& engine : Engines()) {
    for (const PointSpec& point : kCoveredPoints) {
      SCOPED_TRACE(std::string("--fault=") + point.spec + " engine=" + engine.name);
      RunMemcached(point, engine);
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
  }
}

// ---- workload 3: rb-tree data structure -------------------------------------

void RunRbTree(const PointSpec& point, const EngineConfig& engine) {
  RuntimeOptions opts;
  opts.num_cpus = 1;
  opts.quantum_ns = 500'000'000ULL;
  Runtime runtime{opts};

  ScopedFaultInjection faults{point.spec};
  auto instance = DsInstance::Create(runtime, BuildRbTree, {}, kDsHeapSize, engine.choice);
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  DsInstance& ds = *instance;
  ExpectEngineRecorded(runtime, ds.id(DsOp::kUpdate), engine, point.point);
  runtime.StartWatchdog();

  const DsOp kOps[] = {DsOp::kUpdate, DsOp::kLookup, DsOp::kDelete};
  for (int i = 0; i < 18; i++) {
    for (DsOp op : kOps) {
      if (runtime.IsUnloaded(ds.id(op))) {
        runtime.Reset(ds.id(op));
      }
    }
    uint64_t key = static_cast<uint64_t>(i % 7) + 1;
    switch (i % 3) {
      case 0:
        ds.Update(key, key * 10);
        break;
      case 1:
        ds.Lookup(key);
        break;
      default:
        ds.Delete(key);
        break;
    }
    for (DsOp op : kOps) {
      InvariantReport sweep = runtime.SweepInvariants(ds.id(op));
      EXPECT_TRUE(sweep.ok()) << DsOpName(op) << ": " << sweep.ToString();
    }
  }
  runtime.StopWatchdog();

  std::string p = point.point;
  if (p == "heap.pagein" || p == "heap.guard") {
    EXPECT_GT(FailsOf(point.point), 0u) << point.spec << " never fired";
  }
}

TEST(ChaosMatrix, RbTreeDataStructure) {
  for (const EngineConfig& engine : Engines()) {
    for (const PointSpec& point : kCoveredPoints) {
      SCOPED_TRACE(std::string("--fault=") + point.spec + " engine=" + engine.name);
      RunRbTree(point, engine);
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
  }
}

// ---- workload 4: sharded dispatch -------------------------------------------

// The scatter workload through ShardedRuntime: steering + ingress ring +
// worker batches. shard.enqueue surfaces as a counted drop (Submit returns
// false, never blocks), and SweepInvariants must stay green through drain,
// quiesced unload and shard shutdown.
void RunShardedScatter(const PointSpec& point, const EngineConfig& engine) {
  ShardedRuntimeOptions sopts;
  sopts.num_shards = 2;
  sopts.batch_size = 4;
  sopts.queue_capacity = 64;
  sopts.runtime.num_cpus = 2;
  sopts.runtime.quantum_ns = 500'000'000ULL;
  ShardedRuntime sharded{sopts};
  auto desc = sharded.runtime().maps().CreateArray(4, 8, 8);
  ASSERT_TRUE(desc.ok());

  ScopedFaultInjection faults{point.spec};
  LoadOptions lo;
  lo.heap_static_bytes = 128;
  lo.optimize = engine.choice.optimize;
  lo.engine = engine.choice.engine;
  lo.jit = engine.choice.jit;
  auto id = sharded.Load(ScatterProgram(desc->id), lo);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  const ShardPlacement& place = sharded.placement(*id);

  uint8_t ctx[64] = {0};
  int dropped_submits = 0;
  for (int i = 0; i < 12; i++) {
    for (ExtensionId rid : place.replicas) {
      if (sharded.runtime().IsUnloaded(rid)) {
        sharded.runtime().Reset(rid);
      }
    }
    InvokeResult r = sharded.InvokeSync(*id, /*flow_hash=*/i, ctx, sizeof(ctx));
    if (!r.attached) {
      dropped_submits++;
      continue;
    }
    ExpectCleanResult(r);
  }
  sharded.Flush();
  for (ExtensionId rid : place.replicas) {
    InvariantReport sweep = sharded.runtime().SweepInvariants(rid);
    EXPECT_TRUE(sweep.ok()) << sweep.ToString();
  }

  std::string p = point.point;
  if (p == "shard.enqueue") {
    EXPECT_GT(FailsOf(point.point), 0u) << point.spec << " never fired";
    EXPECT_GT(dropped_submits, 0) << "injected queue-full never dropped a submit";
    uint64_t counted = 0;
    for (const ShardStats& s : sharded.SnapshotStats()) {
      counted += s.dropped;
    }
    EXPECT_GE(counted, static_cast<uint64_t>(dropped_submits));
  }

  // Quiesced unload with workers still live, then sweep again: shutdown must
  // not perturb heap/allocator/object-table invariants.
  sharded.UnloadQuiesced(*id);
  for (ExtensionId rid : place.replicas) {
    EXPECT_TRUE(sharded.runtime().IsUnloaded(rid));
    InvariantReport sweep = sharded.runtime().SweepInvariants(rid);
    EXPECT_TRUE(sweep.ok()) << sweep.ToString();
  }
}

TEST(ChaosMatrix, ShardedScatter) {
  for (const EngineConfig& engine : Engines()) {
    for (const PointSpec& point : kCoveredPoints) {
      SCOPED_TRACE(std::string("--fault=") + point.spec + " engine=" + engine.name);
      RunShardedScatter(point, engine);
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
  }
}

// ---- coverage self-check ----------------------------------------------------

// Registering a fault point without chaos-matrix coverage (or covering a
// point that no longer exists) is a test-suite bug. Exposed as its own ctest
// (chaos-selfcheck) so CI flags the drift even when the matrix is skipped.
TEST(ChaosSelfCheck, AllRegisteredPointsCovered) {
  std::vector<std::string> registered = FaultRegistry::Instance().Names();
  std::vector<std::string> covered;
  for (const PointSpec& p : kCoveredPoints) {
    covered.push_back(p.point);
    // Every covered spec must parse and name a registered point.
    auto parsed = ParseFaultSpec(p.spec);
    ASSERT_TRUE(parsed.ok()) << p.spec << ": " << parsed.status().ToString();
    EXPECT_EQ(parsed->first, p.point);
  }
  std::sort(covered.begin(), covered.end());
  EXPECT_EQ(registered, covered)
      << "fault-point catalog and chaos_test kCoveredPoints have drifted";
}

}  // namespace
}  // namespace kflex
