// Golden-trace regression test: the *semantic* observability event stream —
// helper calls, demand page-ins, guard trips, cancellations — must be
// byte-identical across all three execution engines (reference interpreter,
// optimized interpreter, JIT) for the same workload, and must match the
// checked-in golden file tests/golden/trace_events.txt. Engine-tagged
// pipeline events (jit.compile, jit.fallback, verifier/kie summaries) are
// excluded by construction: only events emitted on engine-shared slow paths
// participate.
//
// Regenerate the golden after an intentional semantic change with:
//   ./golden_trace_test --regen
// and review the diff like any other behavior change.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/apps/memcached.h"
#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/kernel/kernel.h"
#include "src/obs/obs.h"

namespace kflex {
namespace {

bool g_regen = false;

struct EngineConfig {
  const char* name;
  EngineChoice choice;
};

std::vector<EngineConfig> Engines() {
  std::vector<EngineConfig> engines;
  engines.push_back({"ref-interp", {/*optimize=*/false, ExecEngine::kInterp, {}}});
  engines.push_back({"opt-interp", {/*optimize=*/true, ExecEngine::kInterp, {}}});
  // fast_paths=false sends every JIT memory access through the shared
  // translation stub, so heap events fire on the interpreter's schedule.
  JitOptions jit;
  jit.fast_paths = false;
  engines.push_back({"jit", {/*optimize=*/true, ExecEngine::kJit, jit}});
  return engines;
}

// Projects the raw trace onto the engine-independent subset. Fields that are
// legitimately pipeline-dependent are dropped: the unwind pc moves when the
// optimizer reshapes the program, and obs extension ids depend on process
// history, so neither may appear in a golden line.
std::vector<std::string> Normalize(const std::vector<TraceEvent>& trace) {
  std::vector<std::string> out;
  char buf[128];
  for (const TraceEvent& e : trace) {
    switch (static_cast<ObsEvent>(e.code)) {
      case ObsEvent::kHelperCall:
        std::snprintf(buf, sizeof(buf), "helper.call id=%llu",
                      static_cast<unsigned long long>(e.a0));
        break;
      case ObsEvent::kHeapPageIn:
        std::snprintf(buf, sizeof(buf), "heap.pagein first=%llu n=%llu",
                      static_cast<unsigned long long>(e.a0),
                      static_cast<unsigned long long>(e.a1));
        break;
      case ObsEvent::kHeapGuardTrip:
        std::snprintf(buf, sizeof(buf), "heap.guard_trip kind=%llu va=0x%llx",
                      static_cast<unsigned long long>(e.a0),
                      static_cast<unsigned long long>(e.a1));
        break;
      case ObsEvent::kCancelRequested:
        std::snprintf(buf, sizeof(buf), "cancel.requested");
        break;
      case ObsEvent::kCancelUnwound:
        std::snprintf(buf, sizeof(buf), "cancel.unwound released=%llu",
                      static_cast<unsigned long long>(e.a1));
        break;
      default:
        continue;  // engine-tagged or non-semantic event
    }
    out.push_back(buf);
  }
  return out;
}

// ---- workload 1: guarded scatter + map counter ------------------------------

Program ScatterProgram(uint32_t map_id) {
  Assembler a;
  a.Mov(R9, R1);
  a.StImm(BPF_W, R10, -4, 0);
  a.StImm(BPF_DW, R10, -16, 1);
  a.LoadMapPtr(R1, map_id);
  a.Mov(R2, R10);
  a.AddImm(R2, -4);
  a.Mov(R3, R10);
  a.AddImm(R3, -16);
  a.MovImm(R4, 0);
  a.Call(kHelperMapUpdateElem);
  a.Ldx(BPF_W, R6, R9, 0);
  a.LoadHeapAddr(R7, 64);
  a.Add(R7, R6);
  a.MovImm(R4, 64);
  auto loop = a.LoopBegin();
  a.LoopBreakIfImm(loop, BPF_JEQ, R4, 0);
  a.StImm(BPF_DW, R7, 0, 1);
  a.StImm(BPF_DW, R7, 8, 2);
  a.StImm(BPF_DW, R7, 16, 3);
  a.SubImm(R4, 1);
  a.LoopEnd(loop);
  a.MovImm(R0, 1);
  a.Exit();
  auto p = a.Finish("golden_scatter", Hook::kTracepoint, ExtensionMode::kKflex, 1 << 20);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

std::vector<std::string> RunScatter(const EngineConfig& engine) {
  ScopedObsEnable obs(/*trace=*/true, /*metrics=*/false);
  RuntimeOptions opts;
  opts.num_cpus = 1;
  Runtime runtime{opts};
  auto desc = runtime.maps().CreateArray(4, 8, 8);
  EXPECT_TRUE(desc.ok());
  LoadOptions lo;
  lo.heap_static_bytes = 128;
  lo.optimize = engine.choice.optimize;
  lo.engine = engine.choice.engine;
  lo.jit = engine.choice.jit;
  auto id = runtime.Load(ScatterProgram(desc->id), lo);
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  uint8_t ctx[64] = {0};
  for (int i = 0; i < 4; i++) {
    ctx[0] = static_cast<uint8_t>(i * 8);  // sweep the scatter base
    InvokeResult r = runtime.Invoke(*id, 0, ctx, sizeof(ctx));
    EXPECT_FALSE(r.cancelled);
  }
  return Normalize(Obs::Instance().SnapshotTrace());
}

// ---- workload 2: memcached GET/SET over the XDP hook ------------------------

std::vector<std::string> RunMemcached(const EngineConfig& engine) {
  ScopedObsEnable obs(/*trace=*/true, /*metrics=*/false);
  RuntimeOptions opts;
  opts.num_cpus = 1;
  MockKernel kernel(opts);
  auto drv = KflexMemcachedDriver::Create(kernel, {}, {}, engine.choice);
  EXPECT_TRUE(drv.ok()) << drv.status().ToString();
  EXPECT_TRUE(drv->Set(0, 1, "hello").served);
  auto get_hit = drv->Get(0, 1);
  EXPECT_TRUE(get_hit.hit);
  EXPECT_EQ(get_hit.value, "hello");
  EXPECT_FALSE(drv->Get(0, 2).hit);  // miss
  EXPECT_TRUE(drv->Set(0, 2, "a-second-value").served);
  EXPECT_TRUE(drv->Get(0, 2).hit);
  return Normalize(Obs::Instance().SnapshotTrace());
}

// ---- workload 3: page-fault probe (guard trip + cancellation unwind) --------

std::vector<std::string> RunPageFault(const EngineConfig& engine) {
  ScopedObsEnable obs(/*trace=*/true, /*metrics=*/false);
  RuntimeOptions opts;
  opts.num_cpus = 1;
  Runtime runtime{opts};
  Assembler a;
  a.LoadHeapAddr(R2, 512 * 1024);  // never populated: kNotPresent
  a.Ldx(BPF_DW, R3, R2, 0);
  a.MovImm(R0, 0);
  a.Exit();
  auto p = a.Finish("golden_pagefault", Hook::kTracepoint, ExtensionMode::kKflex, 1 << 20);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  LoadOptions lo;
  lo.optimize = engine.choice.optimize;
  lo.engine = engine.choice.engine;
  lo.jit = engine.choice.jit;
  auto id = runtime.Load(*p, lo);
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  uint8_t ctx[64] = {0};
  InvokeResult r = runtime.Invoke(*id, 0, ctx, sizeof(ctx));
  EXPECT_TRUE(r.cancelled);
  return Normalize(Obs::Instance().SnapshotTrace());
}

// ---- golden comparison ------------------------------------------------------

struct Workload {
  const char* name;
  std::vector<std::string> (*run)(const EngineConfig&);
};

const Workload kWorkloads[] = {
    {"scatter", RunScatter},
    {"memcached", RunMemcached},
    {"pagefault", RunPageFault},
};

std::string RenderGolden(const std::vector<std::pair<std::string, std::vector<std::string>>>&
                             sections) {
  std::string out =
      "# Golden semantic trace (tests/golden_trace_test.cc). Regenerate with\n"
      "# `./golden_trace_test --regen` after an intentional semantic change.\n";
  for (const auto& [name, lines] : sections) {
    out += "# workload: " + name + "\n";
    for (const std::string& line : lines) {
      out += line + "\n";
    }
  }
  return out;
}

TEST(GoldenTrace, SemanticStreamIdenticalAcrossEnginesAndMatchesGolden) {
  std::vector<std::pair<std::string, std::vector<std::string>>> sections;
  for (const Workload& w : kWorkloads) {
    std::vector<std::string> reference;
    for (const EngineConfig& engine : Engines()) {
      std::vector<std::string> stream = w.run(engine);
      ASSERT_FALSE(stream.empty()) << w.name << " produced no semantic events";
      if (engine.choice.engine == ExecEngine::kInterp && !engine.choice.optimize) {
        reference = stream;
        continue;
      }
      EXPECT_EQ(stream, reference)
          << "workload '" << w.name << "': engine '" << engine.name
          << "' diverged from the reference interpreter's semantic stream";
    }
    sections.emplace_back(w.name, std::move(reference));
  }

  const std::string path = GOLDEN_TRACE_FILE;
  const std::string rendered = RenderGolden(sections);
  if (g_regen) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << rendered;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (run ./golden_trace_test --regen)";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), rendered)
      << "semantic trace diverged from " << path
      << "; if the change is intentional, regenerate with --regen and review "
         "the diff";
}

}  // namespace
}  // namespace kflex

int main(int argc, char** argv) {
  testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; i++) {
    if (std::string(argv[i]) == "--regen") {
      kflex::g_regen = true;
    }
  }
  return RUN_ALL_TESTS();
}
