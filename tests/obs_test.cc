// Observability subsystem tests: the (subsystem, id) event-catalog
// self-check (obs-selfcheck, mirroring chaos-selfcheck's fault-catalog
// guard), trace-ring semantics (order, wraparound, drop counting),
// disabled-by-default behavior, end-to-end counter/trace attribution
// through a real extension run, and the JSON schema of
// Runtime::SnapshotMetrics / ObsSnapshotToJson.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/base/json.h"
#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/fault/fault.h"
#include "src/obs/obs.h"
#include "src/runtime/runtime.h"

namespace kflex {
namespace {

// ---- obs-selfcheck: the event catalog cannot drift silently -----------------

// Mirror of the catalog in src/obs/obs.cc. Adding an event without updating
// this list (and the docs/observability.md table) fails here, exactly like
// chaos-selfcheck guards the fault-point catalog.
constexpr const char* kCoveredEvents[] = {
    "runtime.load",     "runtime.unload",    "verifier.accept", "verifier.reject",
    "kie.instrument",   "jit.compile",       "jit.fallback",    "heap.pagein",
    "heap.guard_trip",  "alloc.refill",      "alloc.carve",     "alloc.fail",
    "lock.contended",   "lock.order_edge",   "lock.cycle",      "helper.call",
    "cancel.requested", "cancel.unwound",    "cancel.watchdog", "fault.fired",
    "sim.progress",     "shard.start",       "shard.batch",     "shard.forward",
    "shard.drop",       "shard.steal",       "shard.quiesce",
};

TEST(ObsSelfCheck, AllCatalogEventsCovered) {
  std::vector<std::string> covered(std::begin(kCoveredEvents), std::end(kCoveredEvents));
  std::sort(covered.begin(), covered.end());
  std::vector<std::string> registered;
  for (const ObsEventDef& def : ObsEventCatalog()) {
    registered.push_back(def.name);
  }
  std::sort(registered.begin(), registered.end());
  EXPECT_EQ(covered, registered)
      << "obs event catalog and kCoveredEvents drifted: update obs_test.cc "
         "and docs/observability.md together with src/obs/obs.cc";
}

TEST(ObsSelfCheck, CodesAreStableAndUnique) {
  std::set<uint16_t> codes;
  std::set<std::string> names;
  for (const ObsEventDef& def : ObsEventCatalog()) {
    uint16_t code = static_cast<uint16_t>(def.event);
    EXPECT_TRUE(codes.insert(code).second) << "duplicate event code " << code;
    EXPECT_TRUE(names.insert(def.name).second) << "duplicate event name " << def.name;
    // The name's prefix must be the subsystem encoded in the code itself.
    ObsSubsystem sub = ObsEventSubsystem(def.event);
    ASSERT_LT(static_cast<int>(sub), static_cast<int>(ObsSubsystem::kCount));
    std::string prefix = std::string(ObsSubsystemName(sub)) + ".";
    EXPECT_EQ(std::string(def.name).rfind(prefix, 0), 0u)
        << def.name << " does not start with its subsystem prefix " << prefix;
    // Round-trip through the lookup used by trace renderers.
    EXPECT_EQ(FindObsEvent(code), &def);
  }
  EXPECT_EQ(FindObsEvent(0xffff), nullptr);
}

TEST(ObsSelfCheck, CounterCatalogCoversEveryCounter) {
  std::set<int> seen;
  for (const ObsCounterDef& def : ObsCounterCatalog()) {
    EXPECT_TRUE(seen.insert(static_cast<int>(def.counter)).second)
        << "counter listed twice: " << def.name;
    ASSERT_LT(static_cast<int>(def.subsystem), static_cast<int>(ObsSubsystem::kCount));
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(ObsCounter::kCount))
      << "every ObsCounter must appear in ObsCounterCatalog";
}

// ---- trace ring semantics ---------------------------------------------------

TEST(TraceRing, SnapshotOldestFirstAndDropCounted) {
  TraceRing ring;
  for (uint64_t i = 0; i < 10; i++) {
    TraceEvent e;
    e.ts_ns = 100 + i;
    e.a0 = i;
    ring.Emit(e);
  }
  EXPECT_EQ(ring.dropped(), 0u);
  std::vector<TraceEvent> snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 10u);
  for (uint64_t i = 0; i < 10; i++) {
    EXPECT_EQ(snap[i].a0, i);
  }

  // Overflow: capacity + 5 more events overwrite the oldest five.
  for (uint64_t i = 10; i < TraceRing::kCapacity + 5; i++) {
    TraceEvent e;
    e.a0 = i;
    ring.Emit(e);
  }
  EXPECT_EQ(ring.dropped(), 5u);
  EXPECT_EQ(ring.emitted(), TraceRing::kCapacity + 5);
  snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), TraceRing::kCapacity);
  EXPECT_EQ(snap.front().a0, 5u);  // events 0..4 were overwritten
  EXPECT_EQ(snap.back().a0, TraceRing::kCapacity + 4);

  ring.Reset();
  EXPECT_EQ(ring.emitted(), 0u);
  EXPECT_TRUE(ring.Snapshot().empty());
}

// ---- end-to-end through a real extension ------------------------------------

// kflex_malloc + store through the returned pointer: drives helper dispatch,
// the slab allocator (carve + refill) and demand paging in one invocation.
Program MallocProgram() {
  Assembler a;
  a.MovImm(R1, 64);
  a.Call(kHelperKflexMalloc);
  auto iff = a.IfImm(BPF_JNE, R0, 0);
  a.StImm(BPF_DW, R0, 0, 42);
  a.EndIf(iff);
  a.MovImm(R0, 0);
  a.Exit();
  auto p = a.Finish("obs_malloc", Hook::kTracepoint, ExtensionMode::kKflex, 1 << 20);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

TEST(ObsEndToEnd, DisabledByDefaultEmitsNothing) {
  Obs::Instance().ResetAll();
  ASSERT_FALSE(ObsTraceEnabled());
  ASSERT_FALSE(ObsMetricsEnabled());

  Runtime runtime{RuntimeOptions(1)};
  auto id = runtime.Load(MallocProgram());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  uint8_t ctx[64] = {0};
  for (int i = 0; i < 3; i++) {
    InvokeResult r = runtime.Invoke(*id, 0, ctx, sizeof(ctx));
    EXPECT_FALSE(r.cancelled);
  }

  EXPECT_EQ(Obs::Instance().TraceEmitted(), 0u);
  ObsSnapshot snap = runtime.SnapshotMetrics();
  ASSERT_EQ(snap.extensions.size(), 2u);  // global slot + the extension
  for (const ObsExtSnapshot& ext : snap.extensions) {
    for (size_t c = 0; c < static_cast<size_t>(ObsCounter::kCount); c++) {
      EXPECT_EQ(ext.counters[c], 0u);
    }
    EXPECT_EQ(ext.invoke_ns.count(), 0u);
  }
}

TEST(ObsEndToEnd, EnabledRunAttributesCountersAndEvents) {
  ScopedObsEnable obs;

  Runtime runtime{RuntimeOptions(1)};
  auto id = runtime.Load(MallocProgram());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  uint32_t obs_id = runtime.obs_id(*id);
  ASSERT_NE(obs_id, 0u);

  uint8_t ctx[64] = {0};
  for (int i = 0; i < 5; i++) {
    InvokeResult r = runtime.Invoke(*id, 0, ctx, sizeof(ctx));
    ASSERT_FALSE(r.cancelled);
  }

  ObsSnapshot snap = runtime.SnapshotMetrics();
  ASSERT_EQ(snap.extensions.size(), 2u);
  const ObsExtSnapshot& ext = snap.extensions[1];
  EXPECT_EQ(ext.id, obs_id);
  EXPECT_EQ(ext.label, "obs_malloc");
  EXPECT_EQ(ext.counters[static_cast<size_t>(ObsCounter::kInvocations)], 5u);
  EXPECT_EQ(ext.counters[static_cast<size_t>(ObsCounter::kHelperCalls)], 5u);
  EXPECT_GE(ext.counters[static_cast<size_t>(ObsCounter::kPageIns)], 1u);
  EXPECT_GE(ext.counters[static_cast<size_t>(ObsCounter::kAllocRefills)], 1u);
  EXPECT_EQ(ext.invoke_ns.count(), 5u);
  EXPECT_GT(ext.invoke_ns.max(), 0u);

  // The trace must contain the load-pipeline events and the per-invocation
  // helper calls, all attributed to this extension's obs id.
  std::vector<TraceEvent> trace = Obs::Instance().SnapshotTrace();
  auto count_of = [&](ObsEvent ev) {
    size_t n = 0;
    for (const TraceEvent& e : trace) {
      if (e.code == static_cast<uint16_t>(ev) && e.ext == obs_id) {
        n++;
      }
    }
    return n;
  };
  EXPECT_EQ(count_of(ObsEvent::kRuntimeLoad), 1u);
  EXPECT_EQ(count_of(ObsEvent::kVerifierAccept), 1u);
  EXPECT_EQ(count_of(ObsEvent::kKieInstrument), 1u);
  EXPECT_EQ(count_of(ObsEvent::kHelperCall), 5u);
  EXPECT_GE(count_of(ObsEvent::kHeapPageIn), 1u);
  EXPECT_GE(count_of(ObsEvent::kAllocCarve), 1u);
}

TEST(ObsEndToEnd, FaultFiredEventsAreTraced) {
  ScopedObsEnable obs;
  ScopedFaultInjection faults{"alloc.percpu:nth=1"};

  Runtime runtime{RuntimeOptions(1)};
  auto id = runtime.Load(MallocProgram());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  uint8_t ctx[64] = {0};
  // First invocation's allocation fails (helper returns NULL); program
  // handles it and exits cleanly.
  InvokeResult r = runtime.Invoke(*id, 0, ctx, sizeof(ctx));
  EXPECT_FALSE(r.cancelled);

  bool saw_fault = false;
  bool saw_alloc_fail = false;
  for (const TraceEvent& e : Obs::Instance().SnapshotTrace()) {
    if (e.code == static_cast<uint16_t>(ObsEvent::kFaultFired)) {
      saw_fault = true;
    }
    if (e.code == static_cast<uint16_t>(ObsEvent::kAllocFail)) {
      saw_alloc_fail = true;
    }
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_TRUE(saw_alloc_fail);

  ObsSnapshot snap = runtime.SnapshotMetrics();
  EXPECT_EQ(snap.extensions[1].counters[static_cast<size_t>(ObsCounter::kFaultsFired)], 1u);
  EXPECT_EQ(snap.extensions[1].counters[static_cast<size_t>(ObsCounter::kAllocFailures)], 1u);
}

TEST(ObsEndToEnd, CancellationEventsAreTraced) {
  ScopedObsEnable obs;

  Runtime runtime{RuntimeOptions(1)};
  // Touch an unpopulated dynamic-heap page: kNotPresent fault -> cancellation.
  Assembler a;
  a.LoadHeapAddr(R2, 512 * 1024);
  a.Ldx(BPF_DW, R3, R2, 0);
  a.MovImm(R0, 0);
  a.Exit();
  auto p = a.Finish("obs_pagefault", Hook::kTracepoint, ExtensionMode::kKflex, 1 << 20);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  auto id = runtime.Load(*p);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  uint8_t ctx[64] = {0};
  InvokeResult r = runtime.Invoke(*id, 0, ctx, sizeof(ctx));
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(r.fault_kind, MemFaultKind::kNotPresent);

  bool saw_guard_trip = false;
  bool saw_unwound = false;
  for (const TraceEvent& e : Obs::Instance().SnapshotTrace()) {
    if (e.code == static_cast<uint16_t>(ObsEvent::kHeapGuardTrip)) {
      saw_guard_trip = true;
      EXPECT_EQ(e.a0, static_cast<uint64_t>(MemFaultKind::kNotPresent));
    }
    if (e.code == static_cast<uint16_t>(ObsEvent::kCancelUnwound)) {
      saw_unwound = true;
    }
  }
  EXPECT_TRUE(saw_guard_trip);
  EXPECT_TRUE(saw_unwound);

  ObsSnapshot snap = runtime.SnapshotMetrics();
  EXPECT_EQ(snap.extensions[1].counters[static_cast<size_t>(ObsCounter::kCancellations)], 1u);
  EXPECT_EQ(snap.extensions[1].counters[static_cast<size_t>(ObsCounter::kGuardTrips)], 1u);
}

// ---- JSON schema ------------------------------------------------------------

TEST(ObsJson, SnapshotRoundTripsThroughParserWithRequiredKeys) {
  ScopedObsEnable obs;

  Runtime runtime{RuntimeOptions(1)};
  auto id = runtime.Load(MallocProgram());
  ASSERT_TRUE(id.ok());
  uint8_t ctx[64] = {0};
  runtime.Invoke(*id, 0, ctx, sizeof(ctx));

  std::string json = ObsSnapshotToJson(runtime.SnapshotMetrics());
  JsonValue root;
  std::string error;
  ASSERT_TRUE(JsonParse(json, &root, &error)) << error << "\n" << json;

  const JsonValue* trace = root.Find("trace");
  ASSERT_NE(trace, nullptr);
  for (const char* key : {"emitted", "dropped", "resident"}) {
    ASSERT_NE(trace->Find(key), nullptr) << key;
    EXPECT_TRUE(trace->Find(key)->is_number());
  }

  const JsonValue* subsystems = root.Find("subsystems");
  ASSERT_NE(subsystems, nullptr);
  ASSERT_TRUE(subsystems->is_object());
  // Every counter subsystem with at least one counter def must be present.
  for (const char* sub : {"runtime", "heap", "alloc", "lock", "helper", "cancel", "fault"}) {
    EXPECT_NE(subsystems->Find(sub), nullptr) << sub;
  }

  const JsonValue* extensions = root.Find("extensions");
  ASSERT_NE(extensions, nullptr);
  ASSERT_TRUE(extensions->is_array());
  ASSERT_EQ(extensions->array.size(), 2u);
  const JsonValue& ext = extensions->array[1];
  EXPECT_EQ(ext.Find("label")->str, "obs_malloc");
  const JsonValue* lat = ext.Find("invoke_latency_ns");
  ASSERT_NE(lat, nullptr);
  for (const char* key : {"count", "p50", "p99", "p999", "max"}) {
    ASSERT_NE(lat->Find(key), nullptr) << key;
  }
  EXPECT_EQ(lat->Find("count")->AsU64(), 1u);

  const JsonValue* counters = ext.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Find("runtime.invocations")->AsU64(), 1u);
  EXPECT_EQ(counters->Find("helper.calls")->AsU64(), 1u);
}

TEST(ObsJson, ParserRejectsMalformedInput) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(JsonParse("{\"a\": }", &v, &error));
  EXPECT_FALSE(JsonParse("[1, 2", &v, &error));
  EXPECT_FALSE(JsonParse("{\"a\": 1} trailing", &v, &error));
  EXPECT_TRUE(JsonParse("{\"a\": [1, 2.5, true, null, \"s\"]}", &v, &error)) << error;
  EXPECT_EQ(v.Find("a")->array.size(), 5u);
}

}  // namespace
}  // namespace kflex
