// Assembler: encoding, label resolution, structured control flow.
#include "src/ebpf/assembler.h"

#include <gtest/gtest.h>

#include "src/ebpf/helper_ids.h"
#include "src/ebpf/insn.h"
#include "src/ebpf/program.h"

namespace kflex {
namespace {

Program MustFinish(Assembler& a, const char* name = "t") {
  auto p = a.Finish(name, Hook::kXdp, ExtensionMode::kKflex, 0);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

TEST(Assembler, ForwardJumpResolves) {
  Assembler a;
  auto done = a.NewLabel();
  a.MovImm(R0, 1);
  a.JmpImm(BPF_JEQ, R0, 1, done);
  a.MovImm(R0, 2);
  a.Bind(done);
  a.Exit();
  Program p = MustFinish(a);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.insns[1].off, 1);  // skip one instruction
}

TEST(Assembler, BackwardJumpIsNegative) {
  Assembler a;
  auto head = a.NewLabel();
  a.Bind(head);
  a.MovImm(R0, 0);
  a.Jmp(head);
  Program p = MustFinish(a);
  EXPECT_EQ(p.insns[1].off, -2);
}

TEST(Assembler, UnboundLabelFails) {
  Assembler a;
  auto l = a.NewLabel();
  a.Jmp(l);
  a.Exit();
  auto p = a.Finish("bad", Hook::kXdp, ExtensionMode::kKflex, 0);
  EXPECT_FALSE(p.ok());
}

TEST(Assembler, LoadImm64TakesTwoSlots) {
  Assembler a;
  a.LoadImm64(R1, 0xDEADBEEFCAFEF00DULL);
  a.Exit();
  Program p = MustFinish(a);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_TRUE(p.insns[0].IsLdImm64());
  EXPECT_EQ(LdImm64Value(p.insns[0], p.insns[1]), 0xDEADBEEFCAFEF00DULL);
}

TEST(Assembler, HeapAddrCarriesPseudo) {
  Assembler a;
  a.LoadHeapAddr(R2, 128);
  a.Exit();
  Program p = MustFinish(a);
  EXPECT_EQ(p.insns[0].src, kPseudoHeapVar);
  EXPECT_EQ(LdImm64Value(p.insns[0], p.insns[1]), 128u);
}

TEST(Assembler, IfElseShape) {
  Assembler a;
  a.MovImm(R0, 0);
  auto iff = a.IfImm(BPF_JEQ, R1, 0);  // then when R1 == 0
  a.MovImm(R0, 1);
  a.Else(iff);
  a.MovImm(R0, 2);
  a.EndIf(iff);
  a.Exit();
  Program p = MustFinish(a);
  // mov; jne->else; mov(then); ja end; mov(else); exit
  ASSERT_EQ(p.size(), 6u);
  EXPECT_EQ(p.insns[1].AluOpField(), BPF_JNE);  // inverted condition
  EXPECT_EQ(p.insns[1].off, 2);                 // to else
  EXPECT_EQ(p.insns[3].off, 1);                 // then jumps past else
}

TEST(Assembler, LoopShape) {
  Assembler a;
  a.MovImm(R1, 10);
  auto loop = a.LoopBegin();
  a.LoopBreakIfImm(loop, BPF_JEQ, R1, 0);
  a.SubImm(R1, 1);
  a.LoopEnd(loop);
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a);
  // mov; jeq->done; sub; ja head; mov; exit
  ASSERT_EQ(p.size(), 6u);
  EXPECT_EQ(p.insns[3].off, -3);  // back edge to the break check
}

TEST(Assembler, DisassemblesWithoutCrashing) {
  Assembler a;
  a.MovImm(R0, 7);
  a.LoadHeapAddr(R2, 64);
  a.Ldx(BPF_DW, R3, R2, 0);
  a.Stx(BPF_W, R2, 8, R3);
  a.StImm(BPF_B, R2, 1, 9);
  a.AtomicAdd(BPF_DW, R2, 0, R3, /*fetch=*/true);
  a.Call(kHelperKtimeGetNs);
  a.Exit();
  Program p = MustFinish(a);
  std::string text = ProgramToString(p);
  EXPECT_NE(text.find("call 4"), std::string::npos);
  EXPECT_NE(text.find("exit"), std::string::npos);
}

TEST(Assembler, FinishResetsState) {
  Assembler a;
  a.Exit();
  Program p1 = MustFinish(a, "one");
  a.MovImm(R0, 0);
  a.Exit();
  Program p2 = MustFinish(a, "two");
  EXPECT_EQ(p1.size(), 1u);
  EXPECT_EQ(p2.size(), 2u);
}

TEST(Insn, FieldAccessors) {
  Insn l = LdxInsn(BPF_W, R1, R2, 16);
  EXPECT_TRUE(l.IsLoad());
  EXPECT_EQ(l.AccessSize(), 4);
  Insn s = StxInsn(BPF_DW, R1, -8, R2);
  EXPECT_TRUE(s.IsStore());
  EXPECT_EQ(s.AccessSize(), 8);
  Insn atomic = AtomicInsn(BPF_W, R1, 0, R2, BPF_ATOMIC_ADD);
  EXPECT_TRUE(atomic.IsAtomic());
  EXPECT_FALSE(atomic.IsLoad());
  Insn call = CallInsn(12);
  EXPECT_TRUE(call.IsCall());
  Insn exit = ExitInsn();
  EXPECT_TRUE(exit.IsExit());
  Insn ja = JmpAlwaysInsn(-4);
  EXPECT_TRUE(ja.IsUncondJmp());
  EXPECT_FALSE(ja.IsCondJmp());
  Insn jlt = JmpImmInsn(BPF_JLT, R3, 100, 2);
  EXPECT_TRUE(jlt.IsCondJmp());
}

}  // namespace
}  // namespace kflex
