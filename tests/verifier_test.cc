// Verifier: acceptance/rejection suites for kernel-interface compliance,
// eBPF-mode strictness, range analysis, loop classification, reference and
// lock tracking, and object-table computation.
#include "src/verifier/verifier.h"

#include <gtest/gtest.h>

#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"

namespace kflex {
namespace {

constexpr uint64_t kHeap = 1 << 20;  // 1 MB test heap

Program Build(Assembler& a, ExtensionMode mode, uint64_t heap = kHeap,
              Hook hook = Hook::kXdp) {
  auto p = a.Finish("t", hook, mode, heap);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

StatusOr<Analysis> VerifyP(const Program& p, VerifyOptions opts = {}) { return Verify(p, opts); }

void ExpectRejected(const Program& p, const std::string& substr, VerifyOptions opts = {}) {
  auto r = Verify(p, opts);
  ASSERT_FALSE(r.ok()) << "expected rejection containing '" << substr << "'";
  EXPECT_NE(r.status().message().find(substr), std::string::npos)
      << "actual: " << r.status().ToString();
}

// ---- Basic structure ----

TEST(VerifierStructure, EmptyProgramRejected) {
  Program p;
  p.mode = ExtensionMode::kKflex;
  ExpectRejected(p, "empty");
}

TEST(VerifierStructure, FallOffEndRejected) {
  Assembler a;
  a.MovImm(R0, 0);
  ExpectRejected(Build(a, ExtensionMode::kKflex), "falls off");
}

TEST(VerifierStructure, ReservedRegisterRejected) {
  Program p;
  p.mode = ExtensionMode::kKflex;
  p.insns.push_back(MovImmInsn(RAX, 1));
  p.insns.push_back(ExitInsn());
  ExpectRejected(p, "reserved");
}

TEST(VerifierStructure, WriteToR10Rejected) {
  Program p;
  p.mode = ExtensionMode::kKflex;
  p.insns.push_back(MovImmInsn(R10, 1));
  p.insns.push_back(ExitInsn());
  ExpectRejected(p, "read-only");
}

TEST(VerifierStructure, DivByConstZeroRejected) {
  Program p;
  p.mode = ExtensionMode::kKflex;
  p.insns.push_back(MovImmInsn(R0, 1));
  p.insns.push_back(AluImmInsn(BPF_DIV, R0, 0));
  p.insns.push_back(ExitInsn());
  ExpectRejected(p, "division");
}

TEST(VerifierStructure, OversizedShiftRejected) {
  Program p;
  p.mode = ExtensionMode::kKflex;
  p.insns.push_back(MovImmInsn(R0, 1));
  p.insns.push_back(AluImmInsn(BPF_LSH, R0, 64));
  p.insns.push_back(ExitInsn());
  ExpectRejected(p, "shift");
}

TEST(VerifierStructure, JumpOutOfRangeRejected) {
  Program p;
  p.mode = ExtensionMode::kKflex;
  p.insns.push_back(JmpAlwaysInsn(100));
  p.insns.push_back(ExitInsn());
  ExpectRejected(p, "jump out of range");
}

TEST(VerifierStructure, UnknownHelperRejected) {
  Program p;
  p.mode = ExtensionMode::kKflex;
  p.insns.push_back(CallInsn(9999));
  p.insns.push_back(ExitInsn());
  ExpectRejected(p, "unknown helper");
}

// ---- Register / stack discipline ----

TEST(VerifierState, UninitializedRegisterRejected) {
  Assembler a;
  a.Mov(R0, R3);  // R3 never written
  a.Exit();
  ExpectRejected(Build(a, ExtensionMode::kKflex), "uninitialized");
}

TEST(VerifierState, R0MustBeSetAtExit) {
  Assembler a;
  a.Exit();
  ExpectRejected(Build(a, ExtensionMode::kKflex), "R0");
}

TEST(VerifierState, UninitializedStackReadRejected) {
  Assembler a;
  a.Ldx(BPF_DW, R0, R10, -8);
  a.Exit();
  ExpectRejected(Build(a, ExtensionMode::kKflex), "uninitialized stack");
}

TEST(VerifierState, StackSpillAndFillPreservesPointer) {
  Assembler a;
  a.LoadHeapAddr(R2, 64);
  a.Stx(BPF_DW, R10, -8, R2);
  a.Ldx(BPF_DW, R3, R10, -8);
  a.Ldx(BPF_DW, R0, R3, 0);  // must still be a heap pointer -> allowed
  a.Exit();
  auto r = VerifyP(Build(a, ExtensionMode::kKflex));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Constant offset 64 is provably in bounds: no guard needed.
  EXPECT_EQ(r->elided_guards, 1u);
  EXPECT_EQ(r->required_guards, 0u);
}

TEST(VerifierState, StackOutOfBoundsRejected) {
  Assembler a;
  a.MovImm(R2, 7);
  a.Stx(BPF_DW, R10, -520, R2);
  a.Exit();
  ExpectRejected(Build(a, ExtensionMode::kKflex), "stack access out of bounds");
}

TEST(VerifierState, CtxOutOfBoundsRejected) {
  Assembler a;
  a.Ldx(BPF_DW, R0, R1, 2044);  // 2044 + 8 > 2048
  a.Exit();
  ExpectRejected(Build(a, ExtensionMode::kKflex), "ctx access out of bounds");
}

TEST(VerifierState, CtxVariableOffsetWithinBoundsAccepted) {
  Assembler a;
  a.Ldx(BPF_B, R2, R1, 12);  // scalar in [0,255]
  a.AndImm(R2, 31);          // [0,31]
  a.Add(R2, R1);             // ctx + [0,31]
  a.Ldx(BPF_B, R0, R2, 24);  // within 2048
  a.Exit();
  auto r = VerifyP(Build(a, ExtensionMode::kKflex));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

// ---- Heap access + range analysis / elision ----

TEST(VerifierHeap, ConstantHeapAccessElided) {
  Assembler a;
  a.LoadHeapAddr(R2, 64);
  a.StImm(BPF_DW, R2, 0, 42);
  a.MovImm(R0, 0);
  a.Exit();
  auto r = VerifyP(Build(a, ExtensionMode::kKflex));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->heap_access_insns, 1u);
  EXPECT_EQ(r->elided_guards, 1u);
}

TEST(VerifierHeap, MaskedIndexElided) {
  // bucket array: base + (hash & 1023) * 8 stays in bounds -> elided.
  Assembler a;
  a.Ldx(BPF_DW, R3, R1, 0);  // unknown scalar from ctx
  a.AndImm(R3, 1023);
  a.LshImm(R3, 3);
  a.LoadHeapAddr(R2, 4096);
  a.Add(R2, R3);
  a.Ldx(BPF_DW, R0, R2, 0);
  a.Exit();
  auto r = VerifyP(Build(a, ExtensionMode::kKflex));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->elided_guards, 1u);
  EXPECT_EQ(r->required_guards, 0u);
}

TEST(VerifierHeap, UnboundedIndexNeedsGuard) {
  Assembler a;
  a.Ldx(BPF_DW, R3, R1, 0);  // unknown scalar
  a.LoadHeapAddr(R2, 64);
  a.Add(R2, R3);             // heap ptr + unknown
  a.Ldx(BPF_DW, R0, R2, 0);
  a.Exit();
  auto r = VerifyP(Build(a, ExtensionMode::kKflex));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->required_guards, 1u);
  EXPECT_EQ(r->elided_guards, 0u);
}

TEST(VerifierHeap, ScalarDereferenceIsFormationGuard) {
  Assembler a;
  a.LoadHeapAddr(R2, 64);
  a.Ldx(BPF_DW, R3, R2, 0);  // load untrusted pointer from heap
  a.Ldx(BPF_DW, R0, R3, 8);  // deref it: formation guard
  a.Exit();
  auto r = VerifyP(Build(a, ExtensionMode::kKflex));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->formation_guards, 1u);
  EXPECT_EQ(r->elided_guards, 1u);  // the first, constant-offset load
}

TEST(VerifierHeap, MallocFieldAccessElidedViaGuardZone) {
  Assembler a;
  a.MovImm(R1, 128);
  a.Call(kHelperKflexMalloc);
  auto iff = a.IfImm(BPF_JNE, R0, 0);
  a.StImm(BPF_DW, R0, 64, 7);  // field access within guard-zone slack
  a.EndIf(iff);
  a.MovImm(R0, 0);
  a.Exit();
  auto r = VerifyP(Build(a, ExtensionMode::kKflex));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->elided_guards, 1u);
}

TEST(VerifierHeap, NullCheckRequiredForMalloc) {
  Assembler a;
  a.MovImm(R1, 128);
  a.Call(kHelperKflexMalloc);
  a.StImm(BPF_DW, R0, 0, 7);  // no null check
  a.MovImm(R0, 0);
  a.Exit();
  ExpectRejected(Build(a, ExtensionMode::kKflex), "null");
}

TEST(VerifierHeap, HeapVarBeyondHeapRejected) {
  Assembler a;
  a.LoadHeapAddr(R2, kHeap + 8);
  a.Ldx(BPF_DW, R0, R2, 0);
  a.Exit();
  ExpectRejected(Build(a, ExtensionMode::kKflex), "beyond heap");
}

TEST(VerifierHeap, EbpfModeRejectsHeap) {
  Assembler a;
  a.LoadHeapAddr(R2, 64);
  a.Ldx(BPF_DW, R0, R2, 0);
  a.Exit();
  ExpectRejected(Build(a, ExtensionMode::kEbpf), "KFlex mode");
}

TEST(VerifierHeap, EbpfModeRejectsScalarDeref) {
  Assembler a;
  a.MovImm(R2, 12345);
  a.Ldx(BPF_DW, R0, R2, 0);
  a.Exit();
  ExpectRejected(Build(a, ExtensionMode::kEbpf, /*heap=*/0), "scalar");
}

// ---- Loops ----

TEST(VerifierLoops, BoundedLoopAcceptedInEbpfMode) {
  Assembler a;
  a.MovImm(R2, 16);
  a.MovImm(R0, 0);
  auto loop = a.LoopBegin();
  a.LoopBreakIfImm(loop, BPF_JEQ, R2, 0);
  a.AddImm(R0, 1);
  a.SubImm(R2, 1);
  a.LoopEnd(loop);
  a.Exit();
  auto r = VerifyP(Build(a, ExtensionMode::kEbpf, /*heap=*/0));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->cancellation_back_edges.empty());
}

TEST(VerifierLoops, UnboundedLoopRejectedInEbpfMode) {
  Assembler a;
  a.Ldx(BPF_DW, R2, R1, 0);  // unknown trip count
  a.MovImm(R0, 0);
  auto loop = a.LoopBegin();
  a.LoopBreakIfImm(loop, BPF_JEQ, R2, 0);
  a.SubImm(R2, 2);  // may never hit 0
  a.LoopEnd(loop);
  a.Exit();
  ExpectRejected(Build(a, ExtensionMode::kEbpf, /*heap=*/0), "termination");
}

TEST(VerifierLoops, UnboundedLoopAcceptedWithCancellationInKflexMode) {
  Assembler a;
  a.Ldx(BPF_DW, R2, R1, 0);
  a.MovImm(R0, 0);
  auto loop = a.LoopBegin();
  a.LoopBreakIfImm(loop, BPF_JEQ, R2, 0);
  a.SubImm(R2, 2);
  a.LoopEnd(loop);
  a.Exit();
  auto r = VerifyP(Build(a, ExtensionMode::kKflex));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->cancellation_back_edges.size(), 1u);
}

TEST(VerifierLoops, BoundedLoopHasNoCancellationPointInKflexMode) {
  Assembler a;
  a.MovImm(R2, 32);
  a.MovImm(R0, 0);
  auto loop = a.LoopBegin();
  a.LoopBreakIfImm(loop, BPF_JEQ, R2, 0);
  a.AddImm(R0, 3);
  a.SubImm(R2, 1);
  a.LoopEnd(loop);
  a.Exit();
  auto r = VerifyP(Build(a, ExtensionMode::kKflex));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->cancellation_back_edges.empty());
}

// ---- References (sockets) ----

void EmitTupleOnStack(Assembler& a) {
  a.StImm(BPF_W, R10, -16, 0x0A000001);  // ip
  a.StImm(BPF_W, R10, -12, 7000);        // port + pad
}

void EmitSkLookup(Assembler& a) {
  EmitTupleOnStack(a);
  // bpf_sk_lookup_udp(ctx, tuple, size, netns, flags)
  a.Mov(R2, R10);
  a.AddImm(R2, -16);
  a.MovImm(R3, 8);
  a.MovImm(R4, 0);
  a.MovImm(R5, 0);
  a.Call(kHelperSkLookupUdp);
}

TEST(VerifierRefs, LeakedSocketRejected) {
  Assembler a;
  EmitSkLookup(a);
  a.MovImm(R0, 0);
  a.Exit();  // socket (possibly) held
  ExpectRejected(Build(a, ExtensionMode::kKflex), "unreleased");
}

TEST(VerifierRefs, AcquireReleaseAccepted) {
  Assembler a;
  EmitSkLookup(a);
  auto iff = a.IfImm(BPF_JNE, R0, 0);
  a.Mov(R1, R0);
  a.Call(kHelperSkRelease);
  a.EndIf(iff);
  a.MovImm(R0, 0);
  a.Exit();
  auto r = VerifyP(Build(a, ExtensionMode::kKflex));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(VerifierRefs, DoubleReleaseRejected) {
  Assembler a;
  EmitSkLookup(a);
  auto iff = a.IfImm(BPF_JNE, R0, 0);
  a.Mov(R6, R0);
  a.Mov(R1, R6);
  a.Call(kHelperSkRelease);
  a.Mov(R1, R6);
  a.Call(kHelperSkRelease);
  a.EndIf(iff);
  a.MovImm(R0, 0);
  a.Exit();
  ExpectRejected(Build(a, ExtensionMode::kKflex), "socket");
}

TEST(VerifierRefs, ObjectTableRecordsSocketAtHeapAccess) {
  Assembler a;
  EmitSkLookup(a);
  auto iff = a.IfImm(BPF_JNE, R0, 0);
  a.Mov(R6, R0);
  a.MovImm(R0, 0);  // drop the R0 alias so the table points at R6
  a.LoadHeapAddr(R2, 64);
  a.StImm(BPF_DW, R2, 0, 1);  // heap access while socket held -> C2 Cp
  a.Mov(R1, R6);
  a.Call(kHelperSkRelease);
  a.EndIf(iff);
  a.MovImm(R0, 0);
  a.Exit();
  auto r = VerifyP(Build(a, ExtensionMode::kKflex));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  bool found_socket_entry = false;
  for (const auto& [pc, table] : r->object_tables) {
    for (const ObjectTableEntry& e : table) {
      if (e.kind == ResourceKind::kSocket && e.reg == R6) {
        found_socket_entry = true;
      }
    }
  }
  EXPECT_TRUE(found_socket_entry);
}

// ---- Locks ----

TEST(VerifierLocks, LockUnlockAccepted) {
  Assembler a;
  a.LoadHeapAddr(R1, 64);
  a.Call(kHelperKflexSpinLock);
  a.LoadHeapAddr(R1, 64);
  a.Call(kHelperKflexSpinUnlock);
  a.MovImm(R0, 0);
  a.Exit();
  auto r = VerifyP(Build(a, ExtensionMode::kKflex));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(VerifierLocks, LockLeakRejected) {
  Assembler a;
  a.LoadHeapAddr(R1, 64);
  a.Call(kHelperKflexSpinLock);
  a.MovImm(R0, 0);
  a.Exit();
  ExpectRejected(Build(a, ExtensionMode::kKflex), "still held");
}

TEST(VerifierLocks, RecursiveLockRejected) {
  Assembler a;
  a.LoadHeapAddr(R1, 64);
  a.Call(kHelperKflexSpinLock);
  a.LoadHeapAddr(R1, 64);
  a.Call(kHelperKflexSpinLock);
  a.MovImm(R0, 0);
  a.Exit();
  ExpectRejected(Build(a, ExtensionMode::kKflex), "deadlock");
}

TEST(VerifierLocks, TwoLocksAllowedInKflexMode) {
  Assembler a;
  a.LoadHeapAddr(R1, 64);
  a.Call(kHelperKflexSpinLock);
  a.LoadHeapAddr(R1, 72);
  a.Call(kHelperKflexSpinLock);
  a.LoadHeapAddr(R1, 72);
  a.Call(kHelperKflexSpinUnlock);
  a.LoadHeapAddr(R1, 64);
  a.Call(kHelperKflexSpinUnlock);
  a.MovImm(R0, 0);
  a.Exit();
  auto r = VerifyP(Build(a, ExtensionMode::kKflex));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(VerifierLocks, KflexHelpersRejectedInEbpfMode) {
  // eBPF mode has no kflex helpers at all (heap pseudo rejected first, and
  // the helper itself is flagged ebpf-incompatible).
  Assembler a;
  a.LoadHeapAddr(R1, 64);
  a.Call(kHelperKflexSpinLock);
  a.MovImm(R0, 0);
  a.Exit();
  ExpectRejected(Build(a, ExtensionMode::kEbpf), "KFlex mode");

  Assembler b;
  b.MovImm(R1, 16);
  b.Call(kHelperKflexMalloc);
  b.MovImm(R0, 0);
  b.Exit();
  ExpectRejected(Build(b, ExtensionMode::kEbpf, /*heap=*/0), "eBPF mode");
}

TEST(VerifierLocks, UnlockWithoutLockRejected) {
  Assembler a;
  a.LoadHeapAddr(R1, 64);
  a.Call(kHelperKflexSpinUnlock);
  a.MovImm(R0, 0);
  a.Exit();
  ExpectRejected(Build(a, ExtensionMode::kKflex), "not held");
}

// ---- Maps ----

TEST(VerifierMaps, LookupRequiresKnownMap) {
  Assembler a;
  a.LoadMapPtr(R1, 1);
  a.StImm(BPF_W, R10, -4, 0);
  a.Mov(R2, R10);
  a.AddImm(R2, -4);
  a.Call(kHelperMapLookupElem);
  a.MovImm(R0, 0);
  a.Exit();
  Program p = Build(a, ExtensionMode::kEbpf, /*heap=*/0);
  ExpectRejected(p, "unknown map");
  VerifyOptions opts;
  opts.maps.push_back(MapDescriptor{1, 4, 8, 16});
  auto r = Verify(p, opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(VerifierMaps, MapValueBoundsEnforced) {
  Assembler a;
  a.LoadMapPtr(R1, 1);
  a.StImm(BPF_W, R10, -4, 0);
  a.Mov(R2, R10);
  a.AddImm(R2, -4);
  a.Call(kHelperMapLookupElem);
  auto iff = a.IfImm(BPF_JNE, R0, 0);
  a.StImm(BPF_DW, R0, 4, 1);  // 4 + 8 > value_size 8
  a.EndIf(iff);
  a.MovImm(R0, 0);
  a.Exit();
  VerifyOptions opts;
  opts.maps.push_back(MapDescriptor{1, 4, 8, 16});
  ExpectRejected(Build(a, ExtensionMode::kEbpf, /*heap=*/0), "map value access out of bounds",
                 opts);
}

}  // namespace
}  // namespace kflex
