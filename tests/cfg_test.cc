// CFG construction (blocks, reachability, dominators, natural loops,
// irreducible retreating edges), the generic dataflow solver, and the
// backward liveness analysis from src/verifier/{cfg,dataflow}.h.
#include "src/verifier/cfg.h"

#include <gtest/gtest.h>

#include "src/ebpf/assembler.h"
#include "src/ebpf/text_asm.h"
#include "src/verifier/dataflow.h"

namespace kflex {
namespace {

Program MustFinish(Assembler& a) {
  auto p = a.Finish("cfg_test", Hook::kTracepoint, ExtensionMode::kKflex);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

TEST(Cfg, StraightLineIsOneBlock) {
  Assembler a;
  a.MovImm(R0, 0);
  a.MovImm(R1, 1);
  a.Exit();
  Program p = MustFinish(a);

  auto cfg = Cfg::Build(p);
  ASSERT_TRUE(cfg.ok()) << cfg.status().ToString();
  ASSERT_EQ(cfg->num_blocks(), 1u);
  EXPECT_EQ(cfg->blocks()[0].start, 0u);
  EXPECT_EQ(cfg->blocks()[0].end, 3u);
  EXPECT_TRUE(cfg->blocks()[0].succs.empty());
  EXPECT_TRUE(cfg->Reachable(0));
  EXPECT_TRUE(cfg->loops().empty());
}

TEST(Cfg, LdImm64OccupiesTwoSlotsOneInsn) {
  Assembler a;
  a.LoadImm64(R2, 0x1122334455667788ULL);
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a);

  auto cfg = Cfg::Build(p);
  ASSERT_TRUE(cfg.ok());
  EXPECT_TRUE(cfg->IsInsnStart(0));
  EXPECT_FALSE(cfg->IsInsnStart(1));  // hi slot
  EXPECT_TRUE(cfg->IsInsnStart(2));
  EXPECT_EQ(cfg->NextPc(0), 2u);
  EXPECT_EQ(cfg->BlockOf(1), cfg->BlockOf(0));
}

TEST(Cfg, DiamondDominators) {
  Assembler a;
  // entry -> {then, else} -> merge
  auto iff = a.IfImm(BPF_JEQ, R1, 0);
  a.MovImm(R2, 1);
  a.Else(iff);
  a.MovImm(R2, 2);
  a.EndIf(iff);
  size_t merge_pc = a.CurrentPc();
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a);

  auto cfg = Cfg::Build(p);
  ASSERT_TRUE(cfg.ok());
  ASSERT_EQ(cfg->num_blocks(), 4u);
  size_t entry = cfg->BlockOf(0);
  size_t merge = cfg->BlockOf(merge_pc);
  EXPECT_EQ(cfg->ImmediateDominator(merge), entry);
  for (size_t b = 0; b < cfg->num_blocks(); b++) {
    EXPECT_TRUE(cfg->Dominates(entry, b));
  }
  // Neither arm dominates the merge.
  for (size_t b = 0; b < cfg->num_blocks(); b++) {
    if (b != entry && b != merge) {
      EXPECT_FALSE(cfg->Dominates(b, merge));
    }
  }
  EXPECT_TRUE(cfg->loops().empty());
}

TEST(Cfg, UnreachableBlockDetected) {
  Assembler a;
  a.MovImm(R0, 0);
  a.Exit();
  size_t dead_pc = a.CurrentPc();
  a.MovImm(R0, 1);
  a.Exit();
  Program p = MustFinish(a);

  auto cfg = Cfg::Build(p);
  ASSERT_TRUE(cfg.ok());
  EXPECT_TRUE(cfg->Reachable(cfg->BlockOf(0)));
  EXPECT_FALSE(cfg->Reachable(cfg->BlockOf(dead_pc)));
}

TEST(Cfg, NaturalLoopMembership) {
  Assembler a;
  a.MovImm(R2, 10);
  auto loop = a.LoopBegin();
  a.LoopBreakIfImm(loop, BPF_JEQ, R2, 0);
  size_t body_pc = a.CurrentPc();
  a.SubImm(R2, 1);
  a.LoopEnd(loop);
  size_t after_pc = a.CurrentPc();
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a);

  auto cfg = Cfg::Build(p);
  ASSERT_TRUE(cfg.ok());
  ASSERT_EQ(cfg->loops().size(), 1u);
  const Cfg::Loop& l = cfg->loops()[0];
  EXPECT_TRUE(cfg->IsNaturalBackEdge(l.back_edge_pc));
  EXPECT_TRUE(cfg->InLoopOfBackEdge(l.back_edge_pc, body_pc));
  EXPECT_TRUE(cfg->InLoopOfBackEdge(l.back_edge_pc, l.back_edge_pc));
  EXPECT_FALSE(cfg->InLoopOfBackEdge(l.back_edge_pc, after_pc));
  // The head dominates every block in the loop.
  for (size_t b : l.blocks) {
    EXPECT_TRUE(cfg->Dominates(l.head, b));
  }
  EXPECT_TRUE(cfg->irreducible_edge_pcs().empty());
}

TEST(Cfg, NestedLoopsAreNested) {
  Assembler a;
  a.MovImm(R2, 3);
  auto outer = a.LoopBegin();
  a.LoopBreakIfImm(outer, BPF_JEQ, R2, 0);
  a.MovImm(R3, 3);
  auto inner = a.LoopBegin();
  a.LoopBreakIfImm(inner, BPF_JEQ, R3, 0);
  a.SubImm(R3, 1);
  a.LoopEnd(inner);
  a.SubImm(R2, 1);
  a.LoopEnd(outer);
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a);

  auto cfg = Cfg::Build(p);
  ASSERT_TRUE(cfg.ok());
  ASSERT_EQ(cfg->loops().size(), 2u);
  // Identify inner vs outer by block-set size.
  const Cfg::Loop* lo = &cfg->loops()[0];
  const Cfg::Loop* hi = &cfg->loops()[1];
  if (lo->blocks.size() > hi->blocks.size()) {
    std::swap(lo, hi);
  }
  EXPECT_LT(lo->blocks.size(), hi->blocks.size());
  for (size_t b : lo->blocks) {
    EXPECT_TRUE(hi->blocks.count(b)) << "inner loop block not inside outer loop";
  }
  EXPECT_NE(lo->head, hi->head);
}

TEST(Cfg, IrreducibleRetreatingEdgeFlagged) {
  // entry branches both to `head` and into the middle of the cycle, so the
  // backward edge's target does not dominate its source: no natural loop.
  Assembler a;
  auto head = a.NewLabel();
  auto mid = a.NewLabel();
  a.JmpImm(BPF_JEQ, R0, 0, mid);
  a.Bind(head);
  a.MovImm(R1, 1);
  a.Bind(mid);
  a.MovImm(R2, 2);
  size_t back_pc = a.CurrentPc();
  a.JmpImm(BPF_JNE, R2, 0, head);
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a);

  auto cfg = Cfg::Build(p);
  ASSERT_TRUE(cfg.ok());
  EXPECT_TRUE(cfg->loops().empty());
  EXPECT_EQ(cfg->irreducible_edge_pcs().count(back_pc), 1u);
  EXPECT_FALSE(cfg->IsNaturalBackEdge(back_pc));
  EXPECT_FALSE(cfg->InLoopOfBackEdge(back_pc, back_pc));
}

TEST(Cfg, RejectsJumpIntoLdImm64HiSlot) {
  Program p;
  p.insns.push_back(JmpAlwaysInsn(1));  // into the hi slot of the ld_imm64
  p.insns.push_back(LdImm64Insn(R1, 7));
  p.insns.push_back(LdImm64HiInsn(7));
  p.insns.push_back(ExitInsn());
  EXPECT_FALSE(Cfg::Build(p).ok());
}

// ---- Generic dataflow solver ------------------------------------------------

// Toy forward problem: bit r set iff register r provably (intersect) or
// possibly (union) holds a constant written by `mov rX, imm`.
class ConstBits : public DataflowProblem {
 public:
  explicit ConstBits(MeetOp meet) : meet_(meet) {}
  size_t NumBits() const override { return kNumRegs; }
  DataflowDirection Direction() const override { return DataflowDirection::kForward; }
  MeetOp Meet() const override { return meet_; }
  BitVec Boundary() const override { return BitVec(NumBits()); }
  void Transfer(size_t, const Insn& insn, BitVec& v) const override {
    if (insn.IsAlu() && insn.AluOpField() == BPF_MOV && insn.SrcField() == BPF_K) {
      v.Set(insn.dst);
    } else if (insn.IsAlu() || insn.IsLoad() || insn.IsLdImm64()) {
      v.Clear(insn.dst);
    } else if (insn.IsCall()) {
      for (int r = R0; r <= R5; r++) {
        v.Clear(r);
      }
    }
  }

 private:
  MeetOp meet_;
};

TEST(Dataflow, ForwardMeetUnionVsIntersect) {
  Assembler a;
  a.MovImm(R3, 7);
  auto iff = a.IfImm(BPF_JEQ, R1, 0);
  a.MovImm(R2, 1);  // only one arm defines R2
  a.EndIf(iff);
  size_t merge_pc = a.CurrentPc();
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a);

  auto cfg = Cfg::Build(p);
  ASSERT_TRUE(cfg.ok());

  DataflowSolution may = SolveDataflow(p, *cfg, ConstBits(MeetOp::kUnion));
  EXPECT_TRUE(may.At(merge_pc).Test(R2));
  EXPECT_TRUE(may.At(merge_pc).Test(R3));

  DataflowSolution must = SolveDataflow(p, *cfg, ConstBits(MeetOp::kIntersect));
  EXPECT_FALSE(must.At(merge_pc).Test(R2));
  EXPECT_TRUE(must.At(merge_pc).Test(R3));
}

// ---- Liveness ---------------------------------------------------------------

TEST(Liveness, OverwrittenRegisterIsDead) {
  Assembler a;
  a.MovImm(R2, 5);  // pc 0: dead, R2 overwritten before any read
  a.MovImm(R2, 7);  // pc 1: live, feeds R0
  a.Mov(R0, R2);    // pc 2
  a.Exit();         // pc 3
  Program p = MustFinish(a);
  auto cfg = Cfg::Build(p);
  ASSERT_TRUE(cfg.ok());
  Liveness live = Liveness::Compute(p, *cfg);

  EXPECT_FALSE(live.RegLiveOut(0, R2));
  EXPECT_TRUE(live.RegLiveOut(1, R2));
  EXPECT_TRUE(live.RegLiveIn(2, R2));
  EXPECT_TRUE(live.RegLiveOut(2, R0));  // exit reads R0
  EXPECT_FALSE(live.RegLiveOut(2, R2));
}

TEST(Liveness, BranchKeepsRegisterLiveAcrossMerge) {
  Assembler a;
  a.MovImm(R6, 42);  // pc 0: read only on one arm -> still live here
  auto iff = a.IfImm(BPF_JEQ, R1, 0);
  a.Mov(R0, R6);
  a.Else(iff);
  a.MovImm(R0, 0);
  a.EndIf(iff);
  a.Exit();
  Program p = MustFinish(a);
  auto cfg = Cfg::Build(p);
  ASSERT_TRUE(cfg.ok());
  Liveness live = Liveness::Compute(p, *cfg);

  EXPECT_TRUE(live.RegLiveOut(0, R6));
}

TEST(Liveness, SpillAndFillTracksStackSlot) {
  Assembler a;
  a.MovImm(R6, 9);
  size_t spill_pc = a.CurrentPc();
  a.Stx(BPF_DW, R10, -8, R6);  // slot 63
  a.MovImm(R6, 0);
  size_t fill_pc = a.CurrentPc();
  a.Ldx(BPF_DW, R0, R10, -8);
  a.Exit();
  Program p = MustFinish(a);
  auto cfg = Cfg::Build(p);
  ASSERT_TRUE(cfg.ok());
  Liveness live = Liveness::Compute(p, *cfg);

  int slot = Liveness::SlotForOffset(-8);
  ASSERT_EQ(slot, 63);
  EXPECT_TRUE(live.SlotLiveOut(spill_pc, slot));
  EXPECT_TRUE(live.SlotLiveIn(fill_pc, slot));
  EXPECT_FALSE(live.SlotLiveOut(fill_pc, slot));
}

TEST(Liveness, DeadSpillWithNoFill) {
  Assembler a;
  a.MovImm(R6, 9);
  size_t spill_pc = a.CurrentPc();
  a.Stx(BPF_DW, R10, -16, R6);
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a);
  auto cfg = Cfg::Build(p);
  ASSERT_TRUE(cfg.ok());
  Liveness live = Liveness::Compute(p, *cfg);

  EXPECT_FALSE(live.SlotLiveOut(spill_pc, Liveness::SlotForOffset(-16)));
}

TEST(Liveness, CallKeepsArgumentRegistersAndStackLive) {
  Assembler a;
  size_t store_pc = a.CurrentPc();
  a.StImm(BPF_DW, R10, -8, 1);  // helper may read stack memory
  a.MovImm(R1, 4);
  a.Call(kHelperKflexMalloc);
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a);
  auto cfg = Cfg::Build(p);
  ASSERT_TRUE(cfg.ok());
  Liveness live = Liveness::Compute(p, *cfg);

  EXPECT_TRUE(live.SlotLiveOut(store_pc, Liveness::SlotForOffset(-8)));
  EXPECT_TRUE(live.RegLiveOut(1, R1));  // consumed by the call
}

TEST(Liveness, HandWrittenTextAsmProgram) {
  // The liveness facts a reader would derive by hand from the counter
  // example: every written value flows somewhere (no dead stores).
  const char* kSrc = R"(
.name  liveness_probe
.hook  tracepoint
.mode  kflex
.heap  1048576
  r2 = *(u64*)(r1 + 0)
  if r2 != 0 goto used
  r2 = 1
used:
  r0 = r2
  exit
)";
  auto p = ParseTextProgram(kSrc);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  auto cfg = Cfg::Build(*p);
  ASSERT_TRUE(cfg.ok());
  Liveness live = Liveness::Compute(*p, *cfg);

  for (size_t pc = 0; pc < p->size(); pc++) {
    const Insn& insn = p->insns[pc];
    if (insn.IsAlu() || insn.IsLoad()) {
      EXPECT_TRUE(live.RegLiveOut(pc, insn.dst)) << "dead store at pc " << pc;
    }
  }
}

}  // namespace
}  // namespace kflex
