// Extension data structures vs. reference models: randomized op sequences
// checked against std:: containers, across all instrumentation flavours
// (KFlex, KFlex-PM, KMod). Also checks Table-3-style guard statistics.
#include "src/apps/ds/ds.h"

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "src/apps/ds/harness.h"
#include "src/base/rng.h"

namespace kflex {
namespace {

struct DsCase {
  const char* name;
  DsBuilder builder;
  bool supports_delete = true;
  bool exact = true;  // sketches are approximate
};

KieOptions KflexOpts() { return KieOptions{}; }
KieOptions PmOpts() {
  KieOptions o;
  o.performance_mode = true;
  return o;
}
KieOptions KmodOpts() {
  KieOptions o;
  o.sfi = false;
  o.cancellation = false;
  return o;
}

class DsCorrectness : public ::testing::TestWithParam<std::tuple<int, int>> {};

DsCase CaseForIndex(int idx) {
  switch (idx) {
    case 0:
      return DsCase{"linked_list", BuildLinkedList};
    case 1:
      return DsCase{"hashmap", BuildHashMap};
    case 2:
      return DsCase{"rbtree", BuildRbTree};
    default:
      return DsCase{"skiplist", BuildSkipList};
  }
}

KieOptions OptsForIndex(int idx) {
  switch (idx) {
    case 0:
      return KflexOpts();
    case 1:
      return PmOpts();
    default:
      return KmodOpts();
  }
}

TEST_P(DsCorrectness, RandomizedOpsMatchReferenceModel) {
  auto [ds_idx, opt_idx] = GetParam();
  DsCase c = CaseForIndex(ds_idx);
  Runtime runtime{RuntimeOptions{1, 1'000'000'000ULL}};
  auto instance = DsInstance::Create(runtime, c.builder, OptsForIndex(opt_idx));
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  DsInstance& ds = *instance;

  // The linked list's update is a constant-time push-front (Fig. 5 caption),
  // so duplicate keys stack up: lookup sees the newest, delete removes it.
  // All other structures have map semantics.
  bool stack_semantics = ds_idx == 0;
  std::map<uint64_t, std::vector<uint64_t>> model;
  Rng rng(static_cast<uint64_t>(ds_idx * 131 + opt_idx));
  constexpr int kOps = 4000;
  constexpr uint64_t kKeySpace = 512;
  for (int i = 0; i < kOps; i++) {
    uint64_t key = 1 + rng.NextBounded(kKeySpace);  // keys are nonzero
    switch (rng.NextBounded(4)) {
      case 0:
      case 1: {
        uint64_t value = 1 + rng.Next() % 1000000;
        ASSERT_TRUE(ds.Update(key, value)) << c.name << " update failed at op " << i;
        auto& stack = model[key];
        if (stack_semantics) {
          stack.push_back(value);
        } else {
          stack.assign(1, value);
        }
        break;
      }
      case 2: {
        auto got = ds.Lookup(key);
        auto it = model.find(key);
        if (it == model.end()) {
          ASSERT_FALSE(got.has_value()) << c.name << " phantom key " << key << " op " << i;
        } else {
          ASSERT_TRUE(got.has_value()) << c.name << " lost key " << key << " op " << i;
          ASSERT_EQ(*got, it->second.back()) << c.name << " wrong value for " << key;
        }
        break;
      }
      case 3: {
        bool deleted = ds.Delete(key);
        auto it = model.find(key);
        ASSERT_EQ(deleted, it != model.end()) << c.name << " delete mismatch " << key;
        if (it != model.end()) {
          it->second.pop_back();
          if (it->second.empty()) {
            model.erase(it);
          }
        }
        break;
      }
    }
  }
  // Drain: delete everything and verify emptiness.
  for (auto& [key, stack] : model) {
    for (size_t n = 0; n < stack.size(); n++) {
      ASSERT_TRUE(ds.Delete(key)) << c.name;
    }
  }
  for (uint64_t key = 1; key <= kKeySpace; key++) {
    ASSERT_FALSE(ds.Lookup(key).has_value()) << c.name;
  }
}

std::string DsCaseName(const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  const char* mode = std::get<1>(info.param) == 0   ? "kflex"
                     : std::get<1>(info.param) == 1 ? "pm"
                                                    : "kmod";
  return std::string(CaseForIndex(std::get<0>(info.param)).name) + "_" + mode;
}

INSTANTIATE_TEST_SUITE_P(AllDsAllModes, DsCorrectness,
                         ::testing::Combine(::testing::Range(0, 4), ::testing::Range(0, 3)),
                         DsCaseName);

TEST(DsGuards, HashmapBucketAccessElided) {
  DsBuild b = BuildHashMap(DsOp::kLookup, kDsHeapSize);
  auto analysis = Verify(b.program, VerifyOptions{});
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  // The bucket load is the pointer-manipulation site; range analysis must
  // prove it safe.
  EXPECT_GE(analysis->elided_guards, 1u);
  EXPECT_GE(analysis->formation_guards, 1u);  // chain-node loads
}

TEST(DsGuards, EveryDsOpVerifiesAndReportsStats) {
  struct Named {
    const char* name;
    DsBuilder builder;
  };
  const Named all[] = {
      {"linked_list", BuildLinkedList}, {"hashmap", BuildHashMap},
      {"rbtree", BuildRbTree},          {"skiplist", BuildSkipList},
      {"countmin", BuildCountMinSketch}, {"countsketch", BuildCountSketch},
  };
  for (const Named& ds : all) {
    for (DsOp op : {DsOp::kUpdate, DsOp::kLookup, DsOp::kDelete}) {
      DsBuild b = ds.builder(op, kDsHeapSize);
      auto analysis = Verify(b.program, VerifyOptions{});
      ASSERT_TRUE(analysis.ok())
          << ds.name << " " << DsOpName(op) << ": " << analysis.status().ToString();
      auto ip = Instrument(b.program, *analysis, HeapLayout::ForSize(kDsHeapSize), {});
      ASSERT_TRUE(ip.ok()) << ds.name << " " << DsOpName(op);
    }
  }
}

TEST(DsSketch, CountMinNeverUnderestimates) {
  Runtime runtime{RuntimeOptions{1, 1'000'000'000ULL}};
  auto instance = DsInstance::Create(runtime, BuildCountMinSketch);
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  DsInstance& sketch = *instance;

  std::unordered_map<uint64_t, uint64_t> truth;
  Rng rng(5);
  for (int i = 0; i < 3000; i++) {
    uint64_t key = 1 + rng.NextBounded(64);
    uint64_t amount = 1 + rng.NextBounded(10);
    ASSERT_TRUE(sketch.Update(key, amount));
    truth[key] += amount;
  }
  for (const auto& [key, count] : truth) {
    auto est = sketch.Lookup(key);
    ASSERT_TRUE(est.has_value());
    EXPECT_GE(*est, count) << "count-min must never underestimate";
  }
}

TEST(DsSketch, CountSketchIsRoughlyUnbiased) {
  Runtime runtime{RuntimeOptions{1, 1'000'000'000ULL}};
  auto instance = DsInstance::Create(runtime, BuildCountSketch);
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  DsInstance& sketch = *instance;

  // One heavy key among light noise: the estimate should be close.
  constexpr uint64_t kHeavy = 42;
  constexpr uint64_t kHeavyCount = 5000;
  for (uint64_t i = 0; i < kHeavyCount; i++) {
    ASSERT_TRUE(sketch.Update(kHeavy, 1));
  }
  Rng rng(6);
  for (int i = 0; i < 500; i++) {
    sketch.Update(1000 + rng.NextBounded(100), 1);
  }
  auto est = sketch.Lookup(kHeavy);
  ASSERT_TRUE(est.has_value());
  int64_t err = static_cast<int64_t>(*est) - static_cast<int64_t>(kHeavyCount);
  EXPECT_LT(std::abs(err), 600) << "estimate " << *est;
}

}  // namespace
}  // namespace kflex
