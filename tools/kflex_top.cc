// kflex-top: text renderer for the KFlex observability snapshot.
//
//   kflex_run prog.kasm --metrics=json | kflex-top
//   kflex-top metrics.json
//   kflex-top --check-schema < metrics.json
//
// Reads the JSON document emitted by `kflex_run --metrics=json` (or
// Runtime::SnapshotMetrics + ObsSnapshotToJson) from a file or stdin and
// renders a per-extension table plus the per-subsystem counter rollup.
// Leading non-JSON lines are skipped (kflex_run prints human-readable
// progress before the document), so the tool can be piped directly.
//
// --check-schema validates the stable schema contract instead of rendering:
// required keys are "obs", "trace" (emitted/dropped/resident), "subsystems"
// (per-subsystem counters) and "extensions" (counters + invoke_latency_ns
// with count/p50/p99/p999/max). Exit 0 iff the document conforms.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/json.h"

using namespace kflex;

namespace {

int Usage() {
  std::fprintf(stderr, "usage: kflex-top [--check-schema] [FILE.json|-]\n");
  return 2;
}

// Drops any human-readable preamble: the document starts at the first line
// that is exactly "{".
std::string ExtractJson(const std::string& input) {
  size_t pos = 0;
  while (pos < input.size()) {
    size_t eol = input.find('\n', pos);
    std::string line = input.substr(pos, eol == std::string::npos ? std::string::npos
                                                                  : eol - pos);
    if (line == "{") {
      return input.substr(pos);
    }
    if (eol == std::string::npos) {
      break;
    }
    pos = eol + 1;
  }
  return input;  // no preamble found: parse as-is for a useful error
}

bool RequireU64(const JsonValue* obj, const char* key, std::string* err) {
  const JsonValue* v = obj == nullptr ? nullptr : obj->Find(key);
  if (v == nullptr || !v->is_number()) {
    *err = std::string("missing or non-numeric key '") + key + "'";
    return false;
  }
  return true;
}

// The schema contract (docs/observability.md). Kept in sync with
// ObsSnapshotToJson; the metrics-json-schema ctest pipes kflex_run output
// through this check.
bool CheckSchema(const JsonValue& root, std::string* err) {
  if (!root.is_object()) {
    *err = "top level is not an object";
    return false;
  }
  const JsonValue* obs = root.Find("obs");
  if (obs == nullptr || !obs->is_object() || obs->Find("trace_enabled") == nullptr ||
      obs->Find("metrics_enabled") == nullptr) {
    *err = "missing 'obs' {trace_enabled, metrics_enabled}";
    return false;
  }
  const JsonValue* trace = root.Find("trace");
  if (trace == nullptr || !trace->is_object()) {
    *err = "missing 'trace' object";
    return false;
  }
  for (const char* key : {"emitted", "dropped", "resident"}) {
    if (!RequireU64(trace, key, err)) {
      *err = "trace: " + *err;
      return false;
    }
  }
  const JsonValue* subsystems = root.Find("subsystems");
  if (subsystems == nullptr || !subsystems->is_object() || subsystems->object.empty()) {
    *err = "missing or empty 'subsystems' object";
    return false;
  }
  for (const auto& [name, counters] : subsystems->object) {
    if (!counters.is_object() || counters.object.empty()) {
      *err = "subsystem '" + name + "' has no counters";
      return false;
    }
    for (const auto& [cname, cval] : counters.object) {
      if (!cval.is_number()) {
        *err = "subsystem counter '" + name + "." + cname + "' is not numeric";
        return false;
      }
    }
  }
  const JsonValue* extensions = root.Find("extensions");
  if (extensions == nullptr || !extensions->is_array() || extensions->array.empty()) {
    *err = "missing or empty 'extensions' array";
    return false;
  }
  // Optional: kflex_run --shards=N splices the per-shard dispatcher counters
  // in (docs/sharding.md). Absent on the classic path; validated if present.
  const JsonValue* shards = root.Find("shards");
  if (shards != nullptr) {
    if (!shards->is_array() || shards->array.empty()) {
      *err = "'shards' present but not a non-empty array";
      return false;
    }
    for (const JsonValue& s : shards->array) {
      for (const char* key : {"shard", "enqueued", "dropped", "invoked", "batches",
                              "forwarded", "stolen", "queue_depth"}) {
        if (!RequireU64(&s, key, err)) {
          *err = "shards: " + *err;
          return false;
        }
      }
    }
  }
  for (const JsonValue& ext : extensions->array) {
    if (!ext.is_object() || !RequireU64(&ext, "id", err)) {
      *err = "extension entry: " + *err;
      return false;
    }
    const JsonValue* label = ext.Find("label");
    if (label == nullptr || !label->is_string()) {
      *err = "extension entry missing string 'label'";
      return false;
    }
    const JsonValue* counters = ext.Find("counters");
    if (counters == nullptr || !counters->is_object() || counters->object.empty()) {
      *err = "extension entry missing 'counters'";
      return false;
    }
    const JsonValue* lat = ext.Find("invoke_latency_ns");
    if (lat == nullptr || !lat->is_object()) {
      *err = "extension entry missing 'invoke_latency_ns'";
      return false;
    }
    for (const char* key : {"count", "p50", "p99", "p999", "max"}) {
      if (!RequireU64(lat, key, err)) {
        *err = "invoke_latency_ns: " + *err;
        return false;
      }
    }
  }
  return true;
}

void Render(const JsonValue& root) {
  const JsonValue* trace = root.Find("trace");
  if (trace != nullptr) {
    std::printf("trace: emitted=%llu dropped=%llu resident=%llu\n",
                static_cast<unsigned long long>(trace->Find("emitted")->AsU64()),
                static_cast<unsigned long long>(trace->Find("dropped")->AsU64()),
                static_cast<unsigned long long>(trace->Find("resident")->AsU64()));
  }
  const JsonValue* subsystems = root.Find("subsystems");
  if (subsystems != nullptr && subsystems->is_object()) {
    std::printf("\n%-10s %s\n", "subsystem", "counters");
    for (const auto& [name, counters] : subsystems->object) {
      std::string line;
      for (const auto& [cname, cval] : counters.object) {
        if (!line.empty()) {
          line += "  ";
        }
        line += cname + "=" + std::to_string(cval.AsU64());
      }
      std::printf("%-10s %s\n", name.c_str(), line.c_str());
    }
  }
  const JsonValue* extensions = root.Find("extensions");
  if (extensions != nullptr && extensions->is_array()) {
    std::printf("\n%-5s %-24s %10s %10s %10s %10s %10s\n", "id", "label", "invokes",
                "p50(ns)", "p99(ns)", "max(ns)", "cancels");
    for (const JsonValue& ext : extensions->array) {
      const JsonValue* lat = ext.Find("invoke_latency_ns");
      const JsonValue* counters = ext.Find("counters");
      uint64_t cancels = 0;
      if (counters != nullptr) {
        const JsonValue* c = counters->Find("cancel.cancellations");
        if (c != nullptr) {
          cancels = c->AsU64();
        }
      }
      std::printf("%-5llu %-24s %10llu %10llu %10llu %10llu %10llu\n",
                  static_cast<unsigned long long>(ext.Find("id")->AsU64()),
                  ext.Find("label") != nullptr ? ext.Find("label")->str.c_str() : "?",
                  static_cast<unsigned long long>(
                      lat != nullptr ? lat->Find("count")->AsU64() : 0),
                  static_cast<unsigned long long>(
                      lat != nullptr ? lat->Find("p50")->AsU64() : 0),
                  static_cast<unsigned long long>(
                      lat != nullptr ? lat->Find("p99")->AsU64() : 0),
                  static_cast<unsigned long long>(
                      lat != nullptr ? lat->Find("max")->AsU64() : 0),
                  static_cast<unsigned long long>(cancels));
    }
  }
  const JsonValue* shards = root.Find("shards");
  if (shards != nullptr && shards->is_array()) {
    std::printf("\n%-6s %10s %10s %10s %10s %8s %10s %10s %10s\n", "shard", "enqueued",
                "invoked", "dropped", "batches", "occ", "forwarded", "stolen", "depth");
    for (const JsonValue& s : shards->array) {
      auto u64 = [&s](const char* key) -> unsigned long long {
        const JsonValue* v = s.Find(key);
        return v != nullptr ? static_cast<unsigned long long>(v->AsU64()) : 0;
      };
      const JsonValue* occ = s.Find("mean_batch_occupancy");
      std::printf("%-6llu %10llu %10llu %10llu %10llu %8.2f %10llu %10llu %10llu\n",
                  u64("shard"), u64("enqueued"), u64("invoked"), u64("dropped"),
                  u64("batches"), occ != nullptr ? occ->number : 0.0, u64("forwarded"),
                  u64("stolen"), u64("queue_depth"));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool check_schema = false;
  std::string path = "-";
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    if (arg == "--check-schema") {
      check_schema = true;
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      path = arg;
    }
  }

  std::string input;
  if (path == "-") {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    input = buffer.str();
  } else {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "kflex-top: cannot open %s\n", path.c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    input = buffer.str();
  }

  JsonValue root;
  std::string error;
  if (!JsonParse(ExtractJson(input), &root, &error)) {
    std::fprintf(stderr, "kflex-top: JSON parse error: %s\n", error.c_str());
    return 1;
  }

  if (check_schema) {
    if (!CheckSchema(root, &error)) {
      std::fprintf(stderr, "kflex-top: schema violation: %s\n", error.c_str());
      return 1;
    }
    std::printf("schema ok\n");
    return 0;
  }

  Render(root);
  return 0;
}
