// kflex-lint: static analysis front end for text-asm extensions.
//
//   kflex-lint [--json] [--passes=a,b] [--fail-on=warning|error] [--Werror]
//              [--opt-report] [--audit] FILE.kasm...
//
// Assembles each file, runs the verifier, then the registered lint passes
// (src/verifier/lint.h), and reports findings together with the verifier's
// Table-3-style elision and object-table statistics.
//
//   --json        machine-readable report on stdout (one object for all files)
//   --passes=a,b  run only the named lint passes (default: all registered)
//   --fail-on=SEV exit 2 when a finding of severity SEV (or stronger) fired;
//                 SEV is "warning" or "error" (the default)
//   --Werror      alias for --fail-on=warning
//   --opt-report  run the bytecode optimizer (src/verifier/opt.h) and report
//                 per-program Table-3-style statistics: guards elided by range
//                 analysis vs. by dominance, folded branches, dead stores. With
//                 --json the report also embeds the instrumented disassembly.
//   --audit       hybrid contract audit (docs/lint.md): distill every
//                 contract-* finding into a standalone witness program and
//                 replay it through the chaos harness on all three engines
//                 with fault points armed. Each finding is classified
//                 CONFIRMED (a replay provably leaked a resource or the
//                 engines diverged) or PRUNED (every replay clean). A
//                 CONFIRMED finding is an error-level event.
//
// Exit code: 0 clean, 1 usage/file/parse error, 2 error-severity findings
// (or verification failure, or a CONFIRMED audit finding).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/audit/replay.h"
#include "src/ebpf/text_asm.h"
#include "src/kie/kie.h"
#include "src/runtime/layout.h"
#include "src/verifier/lint.h"
#include "src/verifier/opt.h"
#include "src/verifier/verifier.h"

using namespace kflex;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: kflex-lint [--json] [--passes=a,b] [--fail-on=warning|error] "
               "[--Werror] [--opt-report] [--audit] FILE.kasm...\n");
  return 1;
}

const char* ResourceName(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kNone:
      return "none";
    case ResourceKind::kSocket:
      return "socket";
    case ResourceKind::kLock:
      return "lock";
  }
  return "?";
}

struct FileReport {
  std::string file;
  bool parsed = false;
  bool verified = false;
  std::string error;  // parse or verification failure message
  size_t insns = 0;
  Analysis analysis;
  size_t object_table_entries = 0;
  std::vector<Finding> findings;
  // --opt-report payload: optimizer pass counters, post-plan Kie guard
  // accounting, and the instrumented disassembly (JSON only).
  bool has_opt = false;
  OptStats opt;
  KieStats kie;
  std::string instrumented_disasm;
  // --audit payload: fully classified contract findings.
  bool has_audit = false;
  std::vector<AuditOutcome> audit;
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void PrintJson(const std::vector<FileReport>& reports, size_t errors, size_t warnings) {
  std::printf("{\n  \"files\": [\n");
  for (size_t i = 0; i < reports.size(); i++) {
    const FileReport& r = reports[i];
    std::printf("    {\n");
    std::printf("      \"file\": \"%s\",\n", JsonEscape(r.file).c_str());
    std::printf("      \"parsed\": %s,\n", r.parsed ? "true" : "false");
    std::printf("      \"verified\": %s,\n", r.verified ? "true" : "false");
    std::printf("      \"error\": \"%s\",\n", JsonEscape(r.error).c_str());
    const Analysis& a = r.analysis;
    std::printf(
        "      \"stats\": {\"insns\": %zu, \"heap_accesses\": %zu, \"elided\": %zu, "
        "\"required\": %zu, \"formation\": %zu, \"cancellation_back_edges\": %zu, "
        "\"pruned_back_edges\": %zu, \"object_table_entries\": %zu, "
        "\"pruned_object_entries\": %zu},\n",
        r.insns, a.heap_access_insns, a.elided_guards, a.required_guards, a.formation_guards,
        a.cancellation_back_edges.size(), a.pruned_back_edges, r.object_table_entries,
        a.pruned_object_entries);
    if (r.has_opt) {
      std::printf(
          "      \"opt\": {\"const_branches_folded\": %zu, \"alu_folded\": %zu, "
          "\"dead_stores_removed\": %zu, \"unreachable_removed\": %zu, "
          "\"guard_sites\": %zu, \"elided_by_range\": %zu, \"elided_by_dominance\": %zu, "
          "\"guards_emitted\": %zu, \"formation_guards\": %zu},\n",
          r.opt.const_branches_folded, r.opt.alu_folded, r.opt.dead_stores_removed,
          r.opt.unreachable_removed, r.kie.pointer_guard_sites, r.kie.guards_elided,
          r.kie.guards_dominated, r.kie.guards_emitted, r.kie.formation_guards);
      std::printf("      \"instrumented_disasm\": \"%s\",\n",
                  JsonEscape(r.instrumented_disasm).c_str());
    }
    std::printf("      \"findings\": [");
    for (size_t j = 0; j < r.findings.size(); j++) {
      const Finding& f = r.findings[j];
      std::printf("%s\n        {\"pc\": %zu, \"severity\": \"%s\", \"pass\": \"%s\", "
                  "\"message\": \"%s\"}",
                  j == 0 ? "" : ",", f.pc, LintSeverityName(f.severity), f.pass.c_str(),
                  JsonEscape(f.message).c_str());
    }
    std::printf("%s]%s\n", r.findings.empty() ? "" : "\n      ", r.has_audit ? "," : "");
    if (r.has_audit) {
      // The witness schema documented in docs/lint.md: the static finding,
      // its path witness (pc + branch decision per step), the distilled
      // witness program, the armed fault schedule, the per-engine replay
      // behavior, and the two-valued classification.
      std::printf("      \"audit\": [");
      for (size_t j = 0; j < r.audit.size(); j++) {
        const AuditOutcome& o = r.audit[j];
        const AuditFinding& f = o.finding;
        std::printf("%s\n        {\"kind\": \"%s\", \"helper\": \"%s\", \"resource\": \"%s\", "
                    "\"source_pc\": %zu, \"sink_pc\": %zu, \"message\": \"%s\",\n",
                    j == 0 ? "" : ",", ObligationKindName(f.kind), JsonEscape(f.helper_name).c_str(),
                    ResourceName(f.resource), f.source_pc, f.sink_pc,
                    JsonEscape(f.message).c_str());
        std::printf("         \"path\": [");
        for (size_t k = 0; k < f.path.size(); k++) {
          std::printf("%s{\"pc\": %zu, \"branch\": %d}", k == 0 ? "" : ", ", f.path[k].pc,
                      f.path[k].branch);
        }
        std::printf("],\n         \"witness_asm\": \"%s\",\n",
                    JsonEscape(o.witness_asm).c_str());
        std::printf("         \"fault_specs\": [");
        for (size_t k = 0; k < o.replay.fault_specs.size(); k++) {
          std::printf("%s\"%s\"", k == 0 ? "" : ", ",
                      JsonEscape(o.replay.fault_specs[k]).c_str());
        }
        std::printf("],\n         \"engines\": [");
        for (size_t k = 0; k < o.replay.engines.size(); k++) {
          const EngineReplay& er = o.replay.engines[k];
          auto run_json = [](const EngineRun& run) {
            char buf[256];
            std::snprintf(buf, sizeof(buf),
                          "{\"invoked\": %s, \"cancelled\": %s, \"verdict\": %lld, "
                          "\"outcome\": \"%s\", \"sweep_ok\": %s, \"fault_fails\": %llu}",
                          run.invoked ? "true" : "false", run.cancelled ? "true" : "false",
                          static_cast<long long>(run.verdict), VmOutcomeName(run.outcome),
                          run.sweep_ok ? "true" : "false",
                          static_cast<unsigned long long>(run.fault_fails));
            return std::string(buf);
          };
          std::printf("%s\n          {\"engine\": \"%s\", \"load_ok\": %s, "
                      "\"load_error\": \"%s\", \"baseline\": %s, \"armed\": %s}",
                      k == 0 ? "" : ",", er.engine.c_str(), er.load_ok ? "true" : "false",
                      JsonEscape(er.load_error).c_str(), run_json(er.baseline).c_str(),
                      run_json(er.armed).c_str());
        }
        std::printf("%s],\n", o.replay.engines.empty() ? "" : "\n         ");
        std::printf("         \"verdict\": \"%s\", \"reason\": \"%s\"}",
                    AuditVerdictName(o.replay.verdict), JsonEscape(o.replay.reason).c_str());
      }
      std::printf("%s]\n", r.audit.empty() ? "" : "\n      ");
    }
    std::printf("    }%s\n", i + 1 < reports.size() ? "," : "");
  }
  std::printf("  ],\n  \"errors\": %zu,\n  \"warnings\": %zu\n}\n", errors, warnings);
}

void PrintText(const FileReport& r) {
  if (!r.parsed) {
    std::printf("%s: parse error: %s\n", r.file.c_str(), r.error.c_str());
    return;
  }
  if (r.verified) {
    const Analysis& a = r.analysis;
    std::printf(
        "%s: verified: %zu insns, %zu heap accesses (%zu elided, %zu required, "
        "%zu formation), %zu cancellation back edges (%zu pruned), "
        "%zu object-table entries (%zu pruned)\n",
        r.file.c_str(), r.insns, a.heap_access_insns, a.elided_guards, a.required_guards,
        a.formation_guards, a.cancellation_back_edges.size(), a.pruned_back_edges,
        r.object_table_entries, a.pruned_object_entries);
  } else {
    std::printf("%s: verification FAILED: %s\n", r.file.c_str(), r.error.c_str());
  }
  if (r.verified && !r.error.empty()) {
    // Lint/audit-stage failure on a program that verified fine (e.g. an
    // unknown --passes name).
    std::printf("%s: error: %s\n", r.file.c_str(), r.error.c_str());
  }
  if (r.has_opt) {
    // Table-3-style accounting after the optimizer: how each guard site was
    // discharged, plus the SCCP/DSE pass counters.
    std::printf(
        "%s: opt-report: %zu guard sites -> %zu elided by range, %zu elided by "
        "dominance, %zu emitted (+%zu formation); %zu branches folded, %zu ALU "
        "folded, %zu dead stores removed, %zu unreachable insns removed\n",
        r.file.c_str(), r.kie.pointer_guard_sites, r.kie.guards_elided, r.kie.guards_dominated,
        r.kie.guards_emitted, r.kie.formation_guards, r.opt.const_branches_folded, r.opt.alu_folded,
        r.opt.dead_stores_removed, r.opt.unreachable_removed);
  }
  for (const Finding& f : r.findings) {
    std::printf("%s:%zu: %s: [%s] %s\n", r.file.c_str(), f.pc, LintSeverityName(f.severity),
                f.pass.c_str(), f.message.c_str());
  }
  for (const AuditOutcome& o : r.audit) {
    const AuditFinding& f = o.finding;
    std::printf("%s:%zu: audit: [contract-%s] %s\n", r.file.c_str(), f.sink_pc,
                ObligationKindName(f.kind), f.message.c_str());
    std::printf("  witness: %zu steps from insn %zu", f.path.size(), f.source_pc);
    size_t branches = 0;
    for (const WitnessStep& s : f.path) {
      if (s.branch >= 0) branches++;
    }
    std::printf(", %zu branch decisions; faults:", branches);
    for (const std::string& spec : o.replay.fault_specs) {
      std::printf(" %s", spec.c_str());
    }
    std::printf("\n");
    for (const EngineReplay& er : o.replay.engines) {
      if (!er.load_ok) {
        std::printf("  %-10s load failed: %s\n", er.engine.c_str(), er.load_error.c_str());
        continue;
      }
      std::printf("  %-10s baseline: %s verdict=%lld sweep=%s | armed: %s verdict=%lld "
                  "sweep=%s fails=%llu\n",
                  er.engine.c_str(), er.baseline.cancelled ? "cancelled" : "ok",
                  static_cast<long long>(er.baseline.verdict), er.baseline.sweep_ok ? "ok" : "TRIP",
                  er.armed.cancelled ? "cancelled" : "ok",
                  static_cast<long long>(er.armed.verdict), er.armed.sweep_ok ? "ok" : "TRIP",
                  static_cast<unsigned long long>(er.armed.fault_fails));
    }
    std::printf("  => %s: %s\n",
                o.replay.verdict == AuditVerdict::kConfirmed ? "CONFIRMED" : "PRUNED",
                o.replay.reason.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool werror = false;
  bool opt_report = false;
  bool audit = false;
  LintRunOptions lint_options;
  std::vector<std::string> files;
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--Werror") {
      werror = true;
    } else if (arg == "--opt-report") {
      opt_report = true;
    } else if (arg == "--audit") {
      audit = true;
    } else if (arg.rfind("--fail-on=", 0) == 0) {
      std::string sev = arg.substr(10);
      if (sev == "warning") {
        werror = true;
      } else if (sev == "error") {
        werror = false;
      } else {
        return Usage();
      }
    } else if (arg.rfind("--passes=", 0) == 0) {
      std::string list = arg.substr(9);
      size_t start = 0;
      while (start <= list.size()) {
        size_t comma = list.find(',', start);
        std::string name = list.substr(start, comma - start);
        if (!name.empty()) {
          lint_options.passes.push_back(name);
        }
        if (comma == std::string::npos) {
          break;
        }
        start = comma + 1;
      }
      if (lint_options.passes.empty()) {
        return Usage();
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    return Usage();
  }

  std::vector<FileReport> reports;
  bool io_error = false;
  size_t errors = 0;
  size_t warnings = 0;
  for (const std::string& path : files) {
    FileReport report;
    report.file = path;
    std::ifstream file(path);
    if (!file) {
      report.error = "cannot open file";
      io_error = true;
      reports.push_back(std::move(report));
      continue;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    auto program = ParseTextProgram(buffer.str());
    if (!program.ok()) {
      report.error = program.status().ToString();
      io_error = true;
      reports.push_back(std::move(report));
      continue;
    }
    report.parsed = true;
    report.insns = program->size();

    auto analysis = Verify(*program, VerifyOptions{});
    const Analysis* analysis_ptr = nullptr;
    if (analysis.ok()) {
      report.verified = true;
      report.analysis = *analysis;
      analysis_ptr = &report.analysis;
      for (const auto& [pc, table] : report.analysis.object_tables) {
        report.object_table_entries += table.size();
      }
    } else {
      report.error = analysis.status().ToString();
      errors++;  // an example that fails verification is an error-level event
    }

    if (opt_report && report.verified) {
      auto opt = Optimize(*program, report.analysis);
      if (opt.ok()) {
        HeapLayout layout;
        if (program->heap_size != 0) {
          layout = HeapLayout::ForSize(program->heap_size);
        }
        auto instr = Instrument(opt->program, opt->analysis, layout, KieOptions{}, &opt->plan);
        if (instr.ok()) {
          report.has_opt = true;
          report.opt = opt->plan.stats;
          report.kie = instr->stats;
          report.instrumented_disasm = ProgramToString(instr->program);
        } else {
          report.error += (report.error.empty() ? "" : "; ") + instr.status().ToString();
        }
      } else {
        report.error += (report.error.empty() ? "" : "; ") + opt.status().ToString();
      }
    }

    auto findings = RunLint(*program, analysis_ptr, lint_options);
    if (findings.ok()) {
      report.findings = *findings;
    } else {
      report.error += (report.error.empty() ? "" : "; ") + findings.status().ToString();
      io_error = true;
    }

    if (audit) {
      auto outcomes = AuditAndReplay(*program, analysis_ptr);
      if (outcomes.ok()) {
        report.has_audit = true;
        report.audit = std::move(outcomes).value();
        for (const AuditOutcome& o : report.audit) {
          if (o.replay.verdict == AuditVerdict::kConfirmed) {
            errors++;
          }
        }
      } else {
        report.error += (report.error.empty() ? "" : "; ") + outcomes.status().ToString();
        io_error = true;
      }
    }
    for (const Finding& f : report.findings) {
      if (f.severity == LintSeverity::kError) {
        errors++;
      } else if (f.severity == LintSeverity::kWarning) {
        warnings++;
      }
    }
    reports.push_back(std::move(report));
  }

  if (json) {
    PrintJson(reports, errors, warnings);
  } else {
    for (const FileReport& r : reports) {
      PrintText(r);
    }
    if (errors + warnings > 0) {
      std::printf("%zu error(s), %zu warning(s)\n", errors, warnings);
    }
  }

  if (io_error) {
    return 1;
  }
  if (errors > 0 || (werror && warnings > 0)) {
    return 2;
  }
  return 0;
}
