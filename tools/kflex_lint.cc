// kflex-lint: static analysis front end for text-asm extensions.
//
//   kflex-lint [--json] [--Werror] [--opt-report] FILE.kasm...
//
// Assembles each file, runs the verifier, then every registered lint pass
// (src/verifier/lint.h), and reports findings together with the verifier's
// Table-3-style elision and object-table statistics.
//
//   --json        machine-readable report on stdout (one object for all files)
//   --Werror      treat warnings as errors for the exit code
//   --opt-report  run the bytecode optimizer (src/verifier/opt.h) and report
//                 per-program Table-3-style statistics: guards elided by range
//                 analysis vs. by dominance, folded branches, dead stores. With
//                 --json the report also embeds the instrumented disassembly.
//
// Exit code: 0 clean, 1 usage/file/parse error, 2 error-severity findings
// (or verification failure).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/ebpf/text_asm.h"
#include "src/kie/kie.h"
#include "src/runtime/layout.h"
#include "src/verifier/lint.h"
#include "src/verifier/opt.h"
#include "src/verifier/verifier.h"

using namespace kflex;

namespace {

int Usage() {
  std::fprintf(stderr, "usage: kflex-lint [--json] [--Werror] [--opt-report] FILE.kasm...\n");
  return 1;
}

struct FileReport {
  std::string file;
  bool parsed = false;
  bool verified = false;
  std::string error;  // parse or verification failure message
  size_t insns = 0;
  Analysis analysis;
  size_t object_table_entries = 0;
  std::vector<Finding> findings;
  // --opt-report payload: optimizer pass counters, post-plan Kie guard
  // accounting, and the instrumented disassembly (JSON only).
  bool has_opt = false;
  OptStats opt;
  KieStats kie;
  std::string instrumented_disasm;
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void PrintJson(const std::vector<FileReport>& reports, size_t errors, size_t warnings) {
  std::printf("{\n  \"files\": [\n");
  for (size_t i = 0; i < reports.size(); i++) {
    const FileReport& r = reports[i];
    std::printf("    {\n");
    std::printf("      \"file\": \"%s\",\n", JsonEscape(r.file).c_str());
    std::printf("      \"parsed\": %s,\n", r.parsed ? "true" : "false");
    std::printf("      \"verified\": %s,\n", r.verified ? "true" : "false");
    std::printf("      \"error\": \"%s\",\n", JsonEscape(r.error).c_str());
    const Analysis& a = r.analysis;
    std::printf(
        "      \"stats\": {\"insns\": %zu, \"heap_accesses\": %zu, \"elided\": %zu, "
        "\"required\": %zu, \"formation\": %zu, \"cancellation_back_edges\": %zu, "
        "\"pruned_back_edges\": %zu, \"object_table_entries\": %zu, "
        "\"pruned_object_entries\": %zu},\n",
        r.insns, a.heap_access_insns, a.elided_guards, a.required_guards, a.formation_guards,
        a.cancellation_back_edges.size(), a.pruned_back_edges, r.object_table_entries,
        a.pruned_object_entries);
    if (r.has_opt) {
      std::printf(
          "      \"opt\": {\"const_branches_folded\": %zu, \"alu_folded\": %zu, "
          "\"dead_stores_removed\": %zu, \"unreachable_removed\": %zu, "
          "\"guard_sites\": %zu, \"elided_by_range\": %zu, \"elided_by_dominance\": %zu, "
          "\"guards_emitted\": %zu, \"formation_guards\": %zu},\n",
          r.opt.const_branches_folded, r.opt.alu_folded, r.opt.dead_stores_removed,
          r.opt.unreachable_removed, r.kie.pointer_guard_sites, r.kie.guards_elided,
          r.kie.guards_dominated, r.kie.guards_emitted, r.kie.formation_guards);
      std::printf("      \"instrumented_disasm\": \"%s\",\n",
                  JsonEscape(r.instrumented_disasm).c_str());
    }
    std::printf("      \"findings\": [");
    for (size_t j = 0; j < r.findings.size(); j++) {
      const Finding& f = r.findings[j];
      std::printf("%s\n        {\"pc\": %zu, \"severity\": \"%s\", \"pass\": \"%s\", "
                  "\"message\": \"%s\"}",
                  j == 0 ? "" : ",", f.pc, LintSeverityName(f.severity), f.pass.c_str(),
                  JsonEscape(f.message).c_str());
    }
    std::printf("%s]\n", r.findings.empty() ? "" : "\n      ");
    std::printf("    }%s\n", i + 1 < reports.size() ? "," : "");
  }
  std::printf("  ],\n  \"errors\": %zu,\n  \"warnings\": %zu\n}\n", errors, warnings);
}

void PrintText(const FileReport& r) {
  if (!r.parsed) {
    std::printf("%s: parse error: %s\n", r.file.c_str(), r.error.c_str());
    return;
  }
  if (r.verified) {
    const Analysis& a = r.analysis;
    std::printf(
        "%s: verified: %zu insns, %zu heap accesses (%zu elided, %zu required, "
        "%zu formation), %zu cancellation back edges (%zu pruned), "
        "%zu object-table entries (%zu pruned)\n",
        r.file.c_str(), r.insns, a.heap_access_insns, a.elided_guards, a.required_guards,
        a.formation_guards, a.cancellation_back_edges.size(), a.pruned_back_edges,
        r.object_table_entries, a.pruned_object_entries);
  } else {
    std::printf("%s: verification FAILED: %s\n", r.file.c_str(), r.error.c_str());
  }
  if (r.has_opt) {
    // Table-3-style accounting after the optimizer: how each guard site was
    // discharged, plus the SCCP/DSE pass counters.
    std::printf(
        "%s: opt-report: %zu guard sites -> %zu elided by range, %zu elided by "
        "dominance, %zu emitted (+%zu formation); %zu branches folded, %zu ALU "
        "folded, %zu dead stores removed, %zu unreachable insns removed\n",
        r.file.c_str(), r.kie.pointer_guard_sites, r.kie.guards_elided, r.kie.guards_dominated,
        r.kie.guards_emitted, r.kie.formation_guards, r.opt.const_branches_folded, r.opt.alu_folded,
        r.opt.dead_stores_removed, r.opt.unreachable_removed);
  }
  for (const Finding& f : r.findings) {
    std::printf("%s:%zu: %s: [%s] %s\n", r.file.c_str(), f.pc, LintSeverityName(f.severity),
                f.pass.c_str(), f.message.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool werror = false;
  bool opt_report = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--Werror") {
      werror = true;
    } else if (arg == "--opt-report") {
      opt_report = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    return Usage();
  }

  std::vector<FileReport> reports;
  bool io_error = false;
  size_t errors = 0;
  size_t warnings = 0;
  for (const std::string& path : files) {
    FileReport report;
    report.file = path;
    std::ifstream file(path);
    if (!file) {
      report.error = "cannot open file";
      io_error = true;
      reports.push_back(std::move(report));
      continue;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    auto program = ParseTextProgram(buffer.str());
    if (!program.ok()) {
      report.error = program.status().ToString();
      io_error = true;
      reports.push_back(std::move(report));
      continue;
    }
    report.parsed = true;
    report.insns = program->size();

    auto analysis = Verify(*program, VerifyOptions{});
    const Analysis* analysis_ptr = nullptr;
    if (analysis.ok()) {
      report.verified = true;
      report.analysis = *analysis;
      analysis_ptr = &report.analysis;
      for (const auto& [pc, table] : report.analysis.object_tables) {
        report.object_table_entries += table.size();
      }
    } else {
      report.error = analysis.status().ToString();
      errors++;  // an example that fails verification is an error-level event
    }

    if (opt_report && report.verified) {
      auto opt = Optimize(*program, report.analysis);
      if (opt.ok()) {
        HeapLayout layout;
        if (program->heap_size != 0) {
          layout = HeapLayout::ForSize(program->heap_size);
        }
        auto instr = Instrument(opt->program, opt->analysis, layout, KieOptions{}, &opt->plan);
        if (instr.ok()) {
          report.has_opt = true;
          report.opt = opt->plan.stats;
          report.kie = instr->stats;
          report.instrumented_disasm = ProgramToString(instr->program);
        } else {
          report.error += (report.error.empty() ? "" : "; ") + instr.status().ToString();
        }
      } else {
        report.error += (report.error.empty() ? "" : "; ") + opt.status().ToString();
      }
    }

    auto findings = RunLint(*program, analysis_ptr);
    if (findings.ok()) {
      report.findings = *findings;
    } else {
      report.error += (report.error.empty() ? "" : "; ") + findings.status().ToString();
      io_error = true;
    }
    for (const Finding& f : report.findings) {
      if (f.severity == LintSeverity::kError) {
        errors++;
      } else if (f.severity == LintSeverity::kWarning) {
        warnings++;
      }
    }
    reports.push_back(std::move(report));
  }

  if (json) {
    PrintJson(reports, errors, warnings);
  } else {
    for (const FileReport& r : reports) {
      PrintText(r);
    }
    if (errors + warnings > 0) {
      std::printf("%zu error(s), %zu warning(s)\n", errors, warnings);
    }
  }

  if (io_error) {
    return 1;
  }
  if (errors > 0 || (werror && warnings > 0)) {
    return 2;
  }
  return 0;
}
