// kflex-lint: static analysis front end for text-asm extensions.
//
//   kflex-lint [--json] [--passes=a,b] [--fail-on=warning|error] [--Werror]
//              [--map=SPEC]... [--opt-report] [--audit] FILE.kasm...
//   kflex-lint --check-schema < report.json
//
// Assembles each file, runs the verifier, then the registered lint passes
// (src/verifier/lint.h), and reports findings together with the verifier's
// Table-3-style elision and object-table statistics plus the shard-safety
// certificate (docs/concurrency.md).
//
//   --json        machine-readable report on stdout (one object for all files)
//   --passes=a,b  run only the named lint passes (default: all registered)
//   --fail-on=SEV exit 2 when a finding of severity SEV (or stronger) fired;
//                 SEV is "warning" or "error" (the default)
//   --Werror      alias for --fail-on=warning
//   --map=SPEC    declare a map for verification, repeatable. SPEC is
//                 ID:KEY_SIZE:VALUE_SIZE:MAX_ENTRIES[:hash|array|ringbuf]
//                 (default hash), mirroring MapRegistry descriptors so
//                 map-using programs verify outside a runtime.
//   --opt-report  run the bytecode optimizer (src/verifier/opt.h) and report
//                 per-program Table-3-style statistics: guards elided by range
//                 analysis vs. by dominance, folded branches, dead stores. With
//                 --json the report also embeds the instrumented disassembly.
//   --audit       hybrid contract audit (docs/lint.md): distill every
//                 contract-* finding into a standalone witness program and
//                 replay it through the chaos harness on all three engines
//                 with fault points armed. Each finding is classified
//                 CONFIRMED (a replay provably leaked a resource or the
//                 engines diverged) or PRUNED (every replay clean). A
//                 CONFIRMED finding is an error-level event.
//   --check-schema  validate a `kflex-lint --json` report read from stdin
//                 against the documented schema (docs/lint.md,
//                 docs/concurrency.md) and exit 0/1. Lets CI assert the
//                 machine-readable contract without golden files:
//                 `kflex-lint --json f.kasm | kflex-lint --check-schema`.
//
// With more than one input file the per-file lock-acquisition graphs are
// also merged and cross-file cycles (possible only when the extensions
// share a heap at load time) are reported as warnings.
//
// Exit code: 0 clean, 1 usage/file/parse error, 2 error-severity findings
// (or verification failure, or a CONFIRMED audit finding).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/audit/replay.h"
#include "src/base/json.h"
#include "src/ebpf/text_asm.h"
#include "src/kie/kie.h"
#include "src/runtime/layout.h"
#include "src/verifier/concurrency.h"
#include "src/verifier/lint.h"
#include "src/verifier/opt.h"
#include "src/verifier/verifier.h"

using namespace kflex;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: kflex-lint [--json] [--passes=a,b] [--fail-on=warning|error] "
               "[--Werror] [--map=ID:KEY:VAL:ENTRIES[:TYPE]] [--opt-report] [--audit] "
               "FILE.kasm...\n"
               "       kflex-lint --check-schema < report.json\n");
  return 1;
}

// Parses a --map=ID:KEY_SIZE:VALUE_SIZE:MAX_ENTRIES[:TYPE] descriptor spec.
bool ParseMapSpec(const std::string& spec, MapDescriptor* out) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t colon = spec.find(':', start);
    parts.push_back(spec.substr(start, colon - start));
    if (colon == std::string::npos) {
      break;
    }
    start = colon + 1;
  }
  if (parts.size() < 4 || parts.size() > 5) {
    return false;
  }
  unsigned long long nums[4];
  for (int i = 0; i < 4; i++) {
    if (parts[i].empty() || parts[i].find_first_not_of("0123456789") != std::string::npos) {
      return false;
    }
    nums[i] = std::stoull(parts[i]);
  }
  out->id = static_cast<uint32_t>(nums[0]);
  out->key_size = static_cast<uint32_t>(nums[1]);
  out->value_size = static_cast<uint32_t>(nums[2]);
  out->max_entries = nums[3];
  out->type = MapType::kHash;
  if (parts.size() == 5) {
    if (parts[4] == "hash") {
      out->type = MapType::kHash;
    } else if (parts[4] == "array") {
      out->type = MapType::kArray;
    } else if (parts[4] == "ringbuf") {
      out->type = MapType::kRingBuf;
    } else {
      return false;
    }
  }
  return true;
}

const char* ResourceName(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kNone:
      return "none";
    case ResourceKind::kSocket:
      return "socket";
    case ResourceKind::kLock:
      return "lock";
  }
  return "?";
}

struct FileReport {
  std::string file;
  bool parsed = false;
  bool verified = false;
  std::string error;  // parse or verification failure message
  size_t insns = 0;
  Analysis analysis;
  size_t object_table_entries = 0;
  std::vector<Finding> findings;
  // --opt-report payload: optimizer pass counters, post-plan Kie guard
  // accounting, and the instrumented disassembly (JSON only).
  bool has_opt = false;
  OptStats opt;
  KieStats kie;
  std::string instrumented_disasm;
  // --audit payload: fully classified contract findings.
  bool has_audit = false;
  std::vector<AuditOutcome> audit;
  // Shard-safety certificate (docs/concurrency.md), computed for every
  // program that parses. Includes the heap-class findings that the lint
  // passes deliberately do not surface (they only downgrade the
  // certificate) and the lock-acquisition edges feeding the cross-file
  // lock-order graph.
  bool has_concurrency = false;
  ConcurrencyReport concurrency;
};

void PrintWitnessJson(const std::vector<WitnessStep>& path) {
  std::printf("[");
  for (size_t k = 0; k < path.size(); k++) {
    std::printf("%s{\"pc\": %zu, \"branch\": %d}", k == 0 ? "" : ", ", path[k].pc,
                path[k].branch);
  }
  std::printf("]");
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void PrintJson(const std::vector<FileReport>& reports, size_t errors, size_t warnings,
               const std::vector<LockOrderGraph::Cycle>& cross_cycles) {
  std::printf("{\n  \"files\": [\n");
  for (size_t i = 0; i < reports.size(); i++) {
    const FileReport& r = reports[i];
    std::printf("    {\n");
    std::printf("      \"file\": \"%s\",\n", JsonEscape(r.file).c_str());
    std::printf("      \"parsed\": %s,\n", r.parsed ? "true" : "false");
    std::printf("      \"verified\": %s,\n", r.verified ? "true" : "false");
    std::printf("      \"error\": \"%s\",\n", JsonEscape(r.error).c_str());
    const Analysis& a = r.analysis;
    std::printf(
        "      \"stats\": {\"insns\": %zu, \"heap_accesses\": %zu, \"elided\": %zu, "
        "\"required\": %zu, \"formation\": %zu, \"cancellation_back_edges\": %zu, "
        "\"pruned_back_edges\": %zu, \"object_table_entries\": %zu, "
        "\"pruned_object_entries\": %zu},\n",
        r.insns, a.heap_access_insns, a.elided_guards, a.required_guards, a.formation_guards,
        a.cancellation_back_edges.size(), a.pruned_back_edges, r.object_table_entries,
        a.pruned_object_entries);
    if (r.has_opt) {
      std::printf(
          "      \"opt\": {\"const_branches_folded\": %zu, \"alu_folded\": %zu, "
          "\"dead_stores_removed\": %zu, \"unreachable_removed\": %zu, "
          "\"guard_sites\": %zu, \"elided_by_range\": %zu, \"elided_by_dominance\": %zu, "
          "\"guards_emitted\": %zu, \"formation_guards\": %zu},\n",
          r.opt.const_branches_folded, r.opt.alu_folded, r.opt.dead_stores_removed,
          r.opt.unreachable_removed, r.kie.pointer_guard_sites, r.kie.guards_elided,
          r.kie.guards_dominated, r.kie.guards_emitted, r.kie.formation_guards);
      std::printf("      \"instrumented_disasm\": \"%s\",\n",
                  JsonEscape(r.instrumented_disasm).c_str());
    }
    if (r.has_concurrency) {
      const ConcurrencyReport& c = r.concurrency;
      std::printf(
          "      \"concurrency\": {\"safety\": \"%s\", \"map_accesses\": %zu, "
          "\"heap_accesses\": %zu, \"atomic_accesses\": %zu, \"locked_accesses\": %zu, "
          "\"unprotected_map_accesses\": %zu, \"unprotected_heap_accesses\": %zu,\n",
          ShardSafetyName(c.safety), c.map_accesses, c.heap_accesses, c.atomic_accesses,
          c.locked_accesses, c.unprotected_map_accesses, c.unprotected_heap_accesses);
      std::printf("        \"findings\": [");
      for (size_t j = 0; j < c.findings.size(); j++) {
        const ConcurrencyFinding& f = c.findings[j];
        std::printf("%s\n          {\"kind\": \"%s\", \"pc\": %zu, \"message\": \"%s\", "
                    "\"path\": ",
                    j == 0 ? "" : ",", ConcurrencyFindingKindName(f.kind), f.pc,
                    JsonEscape(f.message).c_str());
        PrintWitnessJson(f.path);
        std::printf("}");
      }
      std::printf("%s],\n", c.findings.empty() ? "" : "\n        ");
      std::printf("        \"edges\": [");
      for (size_t j = 0; j < c.edges.size(); j++) {
        const LockOrderEdge& e = c.edges[j];
        std::printf("%s\n          {\"from\": %llu, \"to\": %llu, \"pc\": %zu, \"path\": ",
                    j == 0 ? "" : ",", static_cast<unsigned long long>(e.from),
                    static_cast<unsigned long long>(e.to), e.pc);
        PrintWitnessJson(e.path);
        std::printf("}");
      }
      std::printf("%s]},\n", c.edges.empty() ? "" : "\n        ");
    }
    std::printf("      \"findings\": [");
    for (size_t j = 0; j < r.findings.size(); j++) {
      const Finding& f = r.findings[j];
      std::printf("%s\n        {\"pc\": %zu, \"severity\": \"%s\", \"pass\": \"%s\", "
                  "\"message\": \"%s\"",
                  j == 0 ? "" : ",", f.pc, LintSeverityName(f.severity), f.pass.c_str(),
                  JsonEscape(f.message).c_str());
      if (!f.path.empty()) {
        std::printf(", \"path\": ");
        PrintWitnessJson(f.path);
      }
      std::printf("}");
    }
    std::printf("%s]%s\n", r.findings.empty() ? "" : "\n      ", r.has_audit ? "," : "");
    if (r.has_audit) {
      // The witness schema documented in docs/lint.md: the static finding,
      // its path witness (pc + branch decision per step), the distilled
      // witness program, the armed fault schedule, the per-engine replay
      // behavior, and the two-valued classification.
      std::printf("      \"audit\": [");
      for (size_t j = 0; j < r.audit.size(); j++) {
        const AuditOutcome& o = r.audit[j];
        const AuditFinding& f = o.finding;
        std::printf("%s\n        {\"kind\": \"%s\", \"helper\": \"%s\", \"resource\": \"%s\", "
                    "\"source_pc\": %zu, \"sink_pc\": %zu, \"message\": \"%s\",\n",
                    j == 0 ? "" : ",", ObligationKindName(f.kind), JsonEscape(f.helper_name).c_str(),
                    ResourceName(f.resource), f.source_pc, f.sink_pc,
                    JsonEscape(f.message).c_str());
        std::printf("         \"path\": [");
        for (size_t k = 0; k < f.path.size(); k++) {
          std::printf("%s{\"pc\": %zu, \"branch\": %d}", k == 0 ? "" : ", ", f.path[k].pc,
                      f.path[k].branch);
        }
        std::printf("],\n         \"witness_asm\": \"%s\",\n",
                    JsonEscape(o.witness_asm).c_str());
        std::printf("         \"fault_specs\": [");
        for (size_t k = 0; k < o.replay.fault_specs.size(); k++) {
          std::printf("%s\"%s\"", k == 0 ? "" : ", ",
                      JsonEscape(o.replay.fault_specs[k]).c_str());
        }
        std::printf("],\n         \"engines\": [");
        for (size_t k = 0; k < o.replay.engines.size(); k++) {
          const EngineReplay& er = o.replay.engines[k];
          auto run_json = [](const EngineRun& run) {
            char buf[256];
            std::snprintf(buf, sizeof(buf),
                          "{\"invoked\": %s, \"cancelled\": %s, \"verdict\": %lld, "
                          "\"outcome\": \"%s\", \"sweep_ok\": %s, \"fault_fails\": %llu}",
                          run.invoked ? "true" : "false", run.cancelled ? "true" : "false",
                          static_cast<long long>(run.verdict), VmOutcomeName(run.outcome),
                          run.sweep_ok ? "true" : "false",
                          static_cast<unsigned long long>(run.fault_fails));
            return std::string(buf);
          };
          std::printf("%s\n          {\"engine\": \"%s\", \"load_ok\": %s, "
                      "\"load_error\": \"%s\", \"baseline\": %s, \"armed\": %s}",
                      k == 0 ? "" : ",", er.engine.c_str(), er.load_ok ? "true" : "false",
                      JsonEscape(er.load_error).c_str(), run_json(er.baseline).c_str(),
                      run_json(er.armed).c_str());
        }
        std::printf("%s],\n", o.replay.engines.empty() ? "" : "\n         ");
        std::printf("         \"verdict\": \"%s\", \"reason\": \"%s\"}",
                    AuditVerdictName(o.replay.verdict), JsonEscape(o.replay.reason).c_str());
      }
      std::printf("%s]\n", r.audit.empty() ? "" : "\n      ");
    }
    std::printf("    }%s\n", i + 1 < reports.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"cross_file_lock_cycles\": [");
  for (size_t i = 0; i < cross_cycles.size(); i++) {
    const LockOrderGraph::Cycle& cycle = cross_cycles[i];
    std::printf("%s\n    {\"description\": \"%s\", \"programs\": [", i == 0 ? "" : ",",
                JsonEscape(cycle.Describe()).c_str());
    for (size_t j = 0; j < cycle.programs.size(); j++) {
      std::printf("%s\"%s\"", j == 0 ? "" : ", ", JsonEscape(cycle.programs[j]).c_str());
    }
    std::printf("], \"edges\": [");
    for (size_t j = 0; j < cycle.edges.size(); j++) {
      const LockOrderGraph::CycleEdge& e = cycle.edges[j];
      std::printf("%s{\"program\": \"%s\", \"from\": %llu, \"to\": %llu, \"pc\": %zu}",
                  j == 0 ? "" : ", ", JsonEscape(e.program).c_str(),
                  static_cast<unsigned long long>(e.edge.from),
                  static_cast<unsigned long long>(e.edge.to), e.edge.pc);
    }
    std::printf("]}");
  }
  std::printf("%s],\n", cross_cycles.empty() ? "" : "\n  ");
  std::printf("  \"errors\": %zu,\n  \"warnings\": %zu\n}\n", errors, warnings);
}

void PrintText(const FileReport& r) {
  if (!r.parsed) {
    std::printf("%s: parse error: %s\n", r.file.c_str(), r.error.c_str());
    return;
  }
  if (r.verified) {
    const Analysis& a = r.analysis;
    std::printf(
        "%s: verified: %zu insns, %zu heap accesses (%zu elided, %zu required, "
        "%zu formation), %zu cancellation back edges (%zu pruned), "
        "%zu object-table entries (%zu pruned)\n",
        r.file.c_str(), r.insns, a.heap_access_insns, a.elided_guards, a.required_guards,
        a.formation_guards, a.cancellation_back_edges.size(), a.pruned_back_edges,
        r.object_table_entries, a.pruned_object_entries);
  } else {
    std::printf("%s: verification FAILED: %s\n", r.file.c_str(), r.error.c_str());
  }
  if (r.verified && !r.error.empty()) {
    // Lint/audit-stage failure on a program that verified fine (e.g. an
    // unknown --passes name).
    std::printf("%s: error: %s\n", r.file.c_str(), r.error.c_str());
  }
  if (r.has_opt) {
    // Table-3-style accounting after the optimizer: how each guard site was
    // discharged, plus the SCCP/DSE pass counters.
    std::printf(
        "%s: opt-report: %zu guard sites -> %zu elided by range, %zu elided by "
        "dominance, %zu emitted (+%zu formation); %zu branches folded, %zu ALU "
        "folded, %zu dead stores removed, %zu unreachable insns removed\n",
        r.file.c_str(), r.kie.pointer_guard_sites, r.kie.guards_elided, r.kie.guards_dominated,
        r.kie.guards_emitted, r.kie.formation_guards, r.opt.const_branches_folded, r.opt.alu_folded,
        r.opt.dead_stores_removed, r.opt.unreachable_removed);
  }
  if (r.has_concurrency) {
    const ConcurrencyReport& c = r.concurrency;
    std::printf(
        "%s: concurrency: certificate=%s; %zu map access(es) (%zu unprotected), "
        "%zu heap access(es) (%zu unprotected), %zu atomic, %zu lock-protected, "
        "%zu lock-order edge(s)\n",
        r.file.c_str(), ShardSafetyName(c.safety), c.map_accesses, c.unprotected_map_accesses,
        c.heap_accesses, c.unprotected_heap_accesses, c.atomic_accesses, c.locked_accesses,
        c.edges.size());
  }
  for (const Finding& f : r.findings) {
    std::printf("%s:%zu: %s: [%s] %s\n", r.file.c_str(), f.pc, LintSeverityName(f.severity),
                f.pass.c_str(), f.message.c_str());
    if (!f.path.empty()) {
      size_t branches = 0;
      for (const WitnessStep& s : f.path) {
        if (s.branch >= 0) branches++;
      }
      std::printf("  witness: %zu steps from entry, %zu branch decision(s)\n", f.path.size(),
                  branches);
    }
  }
  for (const AuditOutcome& o : r.audit) {
    const AuditFinding& f = o.finding;
    std::printf("%s:%zu: audit: [contract-%s] %s\n", r.file.c_str(), f.sink_pc,
                ObligationKindName(f.kind), f.message.c_str());
    std::printf("  witness: %zu steps from insn %zu", f.path.size(), f.source_pc);
    size_t branches = 0;
    for (const WitnessStep& s : f.path) {
      if (s.branch >= 0) branches++;
    }
    std::printf(", %zu branch decisions; faults:", branches);
    for (const std::string& spec : o.replay.fault_specs) {
      std::printf(" %s", spec.c_str());
    }
    std::printf("\n");
    for (const EngineReplay& er : o.replay.engines) {
      if (!er.load_ok) {
        std::printf("  %-10s load failed: %s\n", er.engine.c_str(), er.load_error.c_str());
        continue;
      }
      std::printf("  %-10s baseline: %s verdict=%lld sweep=%s | armed: %s verdict=%lld "
                  "sweep=%s fails=%llu\n",
                  er.engine.c_str(), er.baseline.cancelled ? "cancelled" : "ok",
                  static_cast<long long>(er.baseline.verdict), er.baseline.sweep_ok ? "ok" : "TRIP",
                  er.armed.cancelled ? "cancelled" : "ok",
                  static_cast<long long>(er.armed.verdict), er.armed.sweep_ok ? "ok" : "TRIP",
                  static_cast<unsigned long long>(er.armed.fault_fails));
    }
    std::printf("  => %s: %s\n",
                o.replay.verdict == AuditVerdict::kConfirmed ? "CONFIRMED" : "PRUNED",
                o.replay.reason.c_str());
  }
}

// ---- --check-schema: validate a --json report against the contract ----------

bool IsOneOf(const std::string& s, std::initializer_list<const char*> allowed) {
  for (const char* a : allowed) {
    if (s == a) {
      return true;
    }
  }
  return false;
}

// Requires `v` (an object member, may be null when absent) to exist with the
// given type. `where` names the location for the error message.
bool Require(const JsonValue* v, JsonValue::Type type, const std::string& where,
             std::string* err) {
  if (v == nullptr || v->type != type) {
    *err = where + (v == nullptr ? " is missing" : " has the wrong type");
    return false;
  }
  return true;
}

bool CheckWitness(const JsonValue* v, const std::string& where, std::string* err) {
  if (!Require(v, JsonValue::Type::kArray, where, err)) {
    return false;
  }
  for (const JsonValue& step : v->array) {
    if (!step.is_object() || !Require(step.Find("pc"), JsonValue::Type::kNumber, where + ".pc", err) ||
        !Require(step.Find("branch"), JsonValue::Type::kNumber, where + ".branch", err)) {
      if (err->empty()) {
        *err = where + ": witness step must be an object";
      }
      return false;
    }
  }
  return true;
}

// Validates the documented `kflex-lint --json` schema (docs/lint.md,
// docs/concurrency.md). Deliberately strict about the members tests and CI
// consume (findings, witnesses, the concurrency certificate, cross-file
// cycles) and lenient about additive extras.
bool CheckLintSchema(const JsonValue& root, std::string* err) {
  if (!root.is_object()) {
    *err = "top level is not an object";
    return false;
  }
  if (!Require(root.Find("files"), JsonValue::Type::kArray, "files", err) ||
      !Require(root.Find("errors"), JsonValue::Type::kNumber, "errors", err) ||
      !Require(root.Find("warnings"), JsonValue::Type::kNumber, "warnings", err)) {
    return false;
  }
  size_t fi = 0;
  for (const JsonValue& f : root.Find("files")->array) {
    std::string where = "files[" + std::to_string(fi++) + "]";
    if (!f.is_object()) {
      *err = where + " is not an object";
      return false;
    }
    if (!Require(f.Find("file"), JsonValue::Type::kString, where + ".file", err) ||
        !Require(f.Find("parsed"), JsonValue::Type::kBool, where + ".parsed", err) ||
        !Require(f.Find("verified"), JsonValue::Type::kBool, where + ".verified", err) ||
        !Require(f.Find("error"), JsonValue::Type::kString, where + ".error", err) ||
        !Require(f.Find("stats"), JsonValue::Type::kObject, where + ".stats", err) ||
        !Require(f.Find("findings"), JsonValue::Type::kArray, where + ".findings", err)) {
      return false;
    }
    size_t gi = 0;
    for (const JsonValue& g : f.Find("findings")->array) {
      std::string gw = where + ".findings[" + std::to_string(gi++) + "]";
      if (!g.is_object() ||
          !Require(g.Find("pc"), JsonValue::Type::kNumber, gw + ".pc", err) ||
          !Require(g.Find("severity"), JsonValue::Type::kString, gw + ".severity", err) ||
          !Require(g.Find("pass"), JsonValue::Type::kString, gw + ".pass", err) ||
          !Require(g.Find("message"), JsonValue::Type::kString, gw + ".message", err)) {
        if (err->empty()) {
          *err = gw + " is not an object";
        }
        return false;
      }
      if (!IsOneOf(g.Find("severity")->str, {"note", "warning", "error"})) {
        *err = gw + ".severity: unknown value \"" + g.Find("severity")->str + "\"";
        return false;
      }
      if (g.Find("path") != nullptr && !CheckWitness(g.Find("path"), gw + ".path", err)) {
        return false;
      }
    }
    const JsonValue* c = f.Find("concurrency");
    if (f.Find("parsed")->bool_value &&
        !Require(c, JsonValue::Type::kObject, where + ".concurrency", err)) {
      return false;  // every parsed program carries a certificate
    }
    if (c != nullptr) {
      std::string cw = where + ".concurrency";
      if (!Require(c->Find("safety"), JsonValue::Type::kString, cw + ".safety", err)) {
        return false;
      }
      if (!IsOneOf(c->Find("safety")->str, {"race-free", "lock-protected", "serial-only"})) {
        *err = cw + ".safety: unknown value \"" + c->Find("safety")->str + "\"";
        return false;
      }
      for (const char* counter :
           {"map_accesses", "heap_accesses", "atomic_accesses", "locked_accesses",
            "unprotected_map_accesses", "unprotected_heap_accesses"}) {
        if (!Require(c->Find(counter), JsonValue::Type::kNumber, cw + "." + counter, err)) {
          return false;
        }
      }
      if (!Require(c->Find("findings"), JsonValue::Type::kArray, cw + ".findings", err) ||
          !Require(c->Find("edges"), JsonValue::Type::kArray, cw + ".edges", err)) {
        return false;
      }
      size_t ci = 0;
      for (const JsonValue& g : c->Find("findings")->array) {
        std::string gw = cw + ".findings[" + std::to_string(ci++) + "]";
        if (!g.is_object() ||
            !Require(g.Find("kind"), JsonValue::Type::kString, gw + ".kind", err) ||
            !Require(g.Find("pc"), JsonValue::Type::kNumber, gw + ".pc", err) ||
            !Require(g.Find("message"), JsonValue::Type::kString, gw + ".message", err) ||
            !CheckWitness(g.Find("path"), gw + ".path", err)) {
          if (err->empty()) {
            *err = gw + " is not an object";
          }
          return false;
        }
        if (!IsOneOf(g.Find("kind")->str,
                     {"unlocked-map-access", "unlocked-heap-access", "non-atomic-map-rmw",
                      "non-atomic-heap-rmw", "lock-cycle"})) {
          *err = gw + ".kind: unknown value \"" + g.Find("kind")->str + "\"";
          return false;
        }
      }
      size_t ei = 0;
      for (const JsonValue& e : c->Find("edges")->array) {
        std::string ew = cw + ".edges[" + std::to_string(ei++) + "]";
        if (!e.is_object() ||
            !Require(e.Find("from"), JsonValue::Type::kNumber, ew + ".from", err) ||
            !Require(e.Find("to"), JsonValue::Type::kNumber, ew + ".to", err) ||
            !Require(e.Find("pc"), JsonValue::Type::kNumber, ew + ".pc", err) ||
            !CheckWitness(e.Find("path"), ew + ".path", err)) {
          if (err->empty()) {
            *err = ew + " is not an object";
          }
          return false;
        }
      }
    }
    const JsonValue* audit = f.Find("audit");
    if (audit != nullptr) {
      if (!audit->is_array()) {
        *err = where + ".audit is not an array";
        return false;
      }
      size_t ai = 0;
      for (const JsonValue& a : audit->array) {
        std::string aw = where + ".audit[" + std::to_string(ai++) + "]";
        if (!a.is_object() ||
            !Require(a.Find("kind"), JsonValue::Type::kString, aw + ".kind", err) ||
            !Require(a.Find("source_pc"), JsonValue::Type::kNumber, aw + ".source_pc", err) ||
            !Require(a.Find("sink_pc"), JsonValue::Type::kNumber, aw + ".sink_pc", err) ||
            !Require(a.Find("verdict"), JsonValue::Type::kString, aw + ".verdict", err) ||
            !CheckWitness(a.Find("path"), aw + ".path", err)) {
          if (err->empty()) {
            *err = aw + " is not an object";
          }
          return false;
        }
      }
    }
  }
  const JsonValue* cycles = root.Find("cross_file_lock_cycles");
  if (!Require(cycles, JsonValue::Type::kArray, "cross_file_lock_cycles", err)) {
    return false;
  }
  size_t xi = 0;
  for (const JsonValue& cyc : cycles->array) {
    std::string xw = "cross_file_lock_cycles[" + std::to_string(xi++) + "]";
    if (!cyc.is_object() ||
        !Require(cyc.Find("description"), JsonValue::Type::kString, xw + ".description", err) ||
        !Require(cyc.Find("programs"), JsonValue::Type::kArray, xw + ".programs", err) ||
        !Require(cyc.Find("edges"), JsonValue::Type::kArray, xw + ".edges", err)) {
      if (err->empty()) {
        *err = xw + " is not an object";
      }
      return false;
    }
  }
  return true;
}

int RunCheckSchema() {
  std::stringstream buffer;
  buffer << std::cin.rdbuf();
  JsonValue root;
  std::string error;
  if (!JsonParse(buffer.str(), &root, &error)) {
    std::fprintf(stderr, "check-schema: JSON parse error: %s\n", error.c_str());
    return 1;
  }
  if (!CheckLintSchema(root, &error)) {
    std::fprintf(stderr, "check-schema: %s\n", error.c_str());
    return 1;
  }
  std::printf("schema ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool werror = false;
  bool opt_report = false;
  bool audit = false;
  bool check_schema = false;
  LintRunOptions lint_options;
  VerifyOptions verify_options;
  std::vector<std::string> files;
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--Werror") {
      werror = true;
    } else if (arg == "--opt-report") {
      opt_report = true;
    } else if (arg == "--audit") {
      audit = true;
    } else if (arg == "--check-schema") {
      check_schema = true;
    } else if (arg.rfind("--map=", 0) == 0) {
      MapDescriptor md;
      if (!ParseMapSpec(arg.substr(6), &md)) {
        return Usage();
      }
      verify_options.maps.push_back(md);
    } else if (arg.rfind("--fail-on=", 0) == 0) {
      std::string sev = arg.substr(10);
      if (sev == "warning") {
        werror = true;
      } else if (sev == "error") {
        werror = false;
      } else {
        return Usage();
      }
    } else if (arg.rfind("--passes=", 0) == 0) {
      std::string list = arg.substr(9);
      size_t start = 0;
      while (start <= list.size()) {
        size_t comma = list.find(',', start);
        std::string name = list.substr(start, comma - start);
        if (!name.empty()) {
          lint_options.passes.push_back(name);
        }
        if (comma == std::string::npos) {
          break;
        }
        start = comma + 1;
      }
      if (lint_options.passes.empty()) {
        return Usage();
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (check_schema) {
    // Schema validation is a standalone mode: report JSON on stdin, no files.
    if (!files.empty()) {
      return Usage();
    }
    return RunCheckSchema();
  }
  if (files.empty()) {
    return Usage();
  }

  std::vector<FileReport> reports;
  bool io_error = false;
  size_t errors = 0;
  size_t warnings = 0;
  for (const std::string& path : files) {
    FileReport report;
    report.file = path;
    std::ifstream file(path);
    if (!file) {
      report.error = "cannot open file";
      io_error = true;
      reports.push_back(std::move(report));
      continue;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    auto program = ParseTextProgram(buffer.str());
    if (!program.ok()) {
      report.error = program.status().ToString();
      io_error = true;
      reports.push_back(std::move(report));
      continue;
    }
    report.parsed = true;
    report.insns = program->size();

    auto analysis = Verify(*program, verify_options);
    const Analysis* analysis_ptr = nullptr;
    if (analysis.ok()) {
      report.verified = true;
      report.analysis = *analysis;
      analysis_ptr = &report.analysis;
      for (const auto& [pc, table] : report.analysis.object_tables) {
        report.object_table_entries += table.size();
      }
    } else {
      report.error = analysis.status().ToString();
      errors++;  // an example that fails verification is an error-level event
    }

    // Shard-safety certificate (docs/concurrency.md). Computed for rejected
    // programs too — the provenance analysis needs no verifier facts, only a
    // CFG — so a racy program is diagnosed even when verification fails.
    report.concurrency = AnalyzeConcurrency(*program, analysis_ptr);
    report.has_concurrency = true;

    if (opt_report && report.verified) {
      auto opt = Optimize(*program, report.analysis);
      if (opt.ok()) {
        HeapLayout layout;
        if (program->heap_size != 0) {
          layout = HeapLayout::ForSize(program->heap_size);
        }
        auto instr = Instrument(opt->program, opt->analysis, layout, KieOptions{}, &opt->plan);
        if (instr.ok()) {
          report.has_opt = true;
          report.opt = opt->plan.stats;
          report.kie = instr->stats;
          report.instrumented_disasm = ProgramToString(instr->program);
        } else {
          report.error += (report.error.empty() ? "" : "; ") + instr.status().ToString();
        }
      } else {
        report.error += (report.error.empty() ? "" : "; ") + opt.status().ToString();
      }
    }

    auto findings = RunLint(*program, analysis_ptr, lint_options);
    if (findings.ok()) {
      report.findings = *findings;
    } else {
      report.error += (report.error.empty() ? "" : "; ") + findings.status().ToString();
      io_error = true;
    }

    if (audit) {
      auto outcomes = AuditAndReplay(*program, analysis_ptr);
      if (outcomes.ok()) {
        report.has_audit = true;
        report.audit = std::move(outcomes).value();
        for (const AuditOutcome& o : report.audit) {
          if (o.replay.verdict == AuditVerdict::kConfirmed) {
            errors++;
          }
        }
      } else {
        report.error += (report.error.empty() ? "" : "; ") + outcomes.status().ToString();
        io_error = true;
      }
    }
    for (const Finding& f : report.findings) {
      if (f.severity == LintSeverity::kError) {
        errors++;
      } else if (f.severity == LintSeverity::kWarning) {
        warnings++;
      }
    }
    reports.push_back(std::move(report));
  }

  // Cross-file lock-order audit: merge every file's acquisition edges into
  // one graph (extensions can share a heap at load time, so AB in one file
  // and BA in another is a real deadlock risk) and warn on cycles that span
  // more than one file — single-file cycles are already the lock-cycle
  // pass's findings.
  std::vector<LockOrderGraph::Cycle> cross_cycles;
  if (reports.size() > 1) {
    LockOrderGraph graph;
    for (const FileReport& r : reports) {
      if (r.has_concurrency) {
        graph.AddEdges(r.file, r.concurrency.edges);
      }
    }
    for (LockOrderGraph::Cycle& cycle : graph.FindCycles()) {
      if (cycle.programs.size() < 2) {
        continue;
      }
      warnings++;
      cross_cycles.push_back(std::move(cycle));
    }
  }

  if (json) {
    PrintJson(reports, errors, warnings, cross_cycles);
  } else {
    for (const FileReport& r : reports) {
      PrintText(r);
    }
    for (const LockOrderGraph::Cycle& cycle : cross_cycles) {
      std::printf("cross-file: warning: [lock-cycle] %s\n", cycle.Describe().c_str());
    }
    if (errors + warnings > 0) {
      std::printf("%zu error(s), %zu warning(s)\n", errors, warnings);
    }
  }

  if (io_error) {
    return 1;
  }
  if (errors > 0 || (werror && warnings > 0)) {
    return 2;
  }
  return 0;
}
