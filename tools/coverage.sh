#!/usr/bin/env bash
# Line-coverage runner: configures the "coverage" preset (gcov
# instrumentation), builds, runs the tier-1 suite plus the chaos tier, and
# prints per-directory line coverage for src/.
#
# Usage: tools/coverage.sh [extra ctest args...]
#
# The summary prefers gcovr when installed; otherwise it falls back to raw
# gcov and aggregates its per-file "Lines executed" report with awk. The
# current baseline is recorded in docs/observability.md — update it there
# when coverage moves materially.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v gcov >/dev/null 2>&1; then
  echo "coverage.sh: gcov not found (install gcc tooling); aborting" >&2
  exit 1
fi

JOBS="$(nproc 2>/dev/null || echo 4)"
BUILD_DIR=build-coverage

cmake --preset coverage >/dev/null
cmake --build --preset coverage -j"${JOBS}"

# Reset counters from previous runs so the numbers reflect exactly this run.
find "${BUILD_DIR}" -name '*.gcda' -delete

# Tier-1 (the default ctest sweep) plus an explicit chaos-tier pass.
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j"${JOBS}" "$@"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j"${JOBS}" -L chaos

if command -v gcovr >/dev/null 2>&1; then
  gcovr --root . --filter 'src/' --print-summary --sort-percentage \
        "${BUILD_DIR}"
  exit 0
fi

# Fallback: run gcov over every counter file and aggregate per directory.
# gcov prints, for each source file:
#   File 'src/ebpf/text_asm.cc'
#   Lines executed:95.21% of 480
# A source file appears once per translation unit that includes it; the
# per-file maximum is kept as a close (slightly conservative) union estimate.
find "${BUILD_DIR}" -name '*.gcda' -print0 |
  xargs -0 -r gcov -n -r -s "$(pwd)" 2>/dev/null |
  awk '
    /^File / {
      file = $0
      sub(/^File '\''/, "", file)
      sub(/'\''$/, "", file)
      next
    }
    /^Lines executed:/ && file ~ /^src\// {
      split($0, parts, /[:% ]+/)
      pct = parts[3] + 0; total = parts[5] + 0
      covered = (pct / 100.0) * total
      if (covered > fhit[file]) fhit[file] = covered
      ftotal[file] = total
      file = ""
    }
    END {
      for (f in ftotal) {
        dir = f
        sub(/\/[^\/]+$/, "", dir)
        printf "%s %d %d\n", dir, ftotal[f], fhit[f]
      }
    }' |
  sort |
  awk '
    {
      lines[$1] += $2; hit[$1] += $3
      total_lines += $2; total_hit += $3
      if (!($1 in seen)) { order[++n] = $1; seen[$1] = 1 }
    }
    END {
      printf "%-24s %10s %10s %8s\n", "directory", "lines", "covered", "pct"
      for (i = 1; i <= n; i++) {
        d = order[i]
        printf "%-24s %10d %10d %7.1f%%\n", d, lines[d], hit[d], 100.0 * hit[d] / lines[d]
      }
      if (total_lines > 0) {
        printf "%-24s %10d %10d %7.1f%%\n", "TOTAL (src/)", total_lines,
               total_hit, 100.0 * total_hit / total_lines
      }
    }'
