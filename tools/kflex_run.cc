// kflex_run: load and execute a .kasm extension through the full pipeline.
//
//   kflex_run FILE.kasm [--dump] [--invoke N] [--ctx BYTE...]
//             [--engine interp|jit] [--jit-stats] [--fault point:spec]...
//
//   --dump       print the verified program and its instrumented form
//   --invoke N   run the extension N times (default 1)
//   --ctx HEX    fill the leading context bytes from a hex string
//   --engine E   execution engine: interp (default) or jit (native x86-64;
//                falls back to the interpreter on unsupported hosts)
//   --jit-stats  print compile statistics / fallback reason after loading
//   --fault F    arm deterministic fault injection; F is "point:spec" (see
//                docs/faults.md, e.g. heap.pagein:nth=3) or "list" to print
//                the registered fault points and exit. Repeatable. Prints
//                per-point hit/fail counters and the post-run invariant
//                sweep after the invocations.
//   --metrics=json  enable the metrics registry for the whole run and print
//                the observability snapshot as JSON after the invocations
//                (the stable schema kflex-top consumes; docs/observability.md)
//   --concurrency-report  print the shard-safety certificate computed at
//                load (docs/concurrency.md): the safety class gating
//                concurrent dispatch, the shared-state access counters, each
//                concurrency finding, and the lock-acquisition edges
//   --trace=FILE  enable the trace rings and write the resident events as
//                text to FILE after the run ("-" = stdout)
//   --shards=N   dispatch the invocations through the sharded runtime
//                (docs/sharding.md) with N worker shards instead of the mock
//                kernel: placement is gated by the shard-safety certificate,
//                requests are steered by the ctx flow hash, and
//                --metrics=json grows a "shards" array with the per-shard
//                dispatcher counters (rendered by kflex-top)
//
// Exit code: 0 on success, 1 on load/verification failure.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/ebpf/text_asm.h"
#include "src/fault/fault.h"
#include "src/kernel/kernel.h"
#include "src/kernel/packet.h"
#include "src/obs/obs.h"
#include "src/shard/shard.h"
#include "src/shard/steering.h"

using namespace kflex;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: kflex_run FILE.kasm [--dump] [--invoke N] [--ctx HEX]\n"
               "                 [--engine interp|jit] [--jit-stats]\n"
               "                 [--fault point:spec | --fault list]...\n"
               "                 [--metrics=json] [--trace=FILE] [--concurrency-report]\n"
               "                 [--shards N]\n");
  return 1;
}

bool ParseHex(const std::string& hex, uint8_t* out, size_t max) {
  if (hex.size() % 2 != 0 || hex.size() / 2 > max) {
    return false;
  }
  for (size_t i = 0; i < hex.size(); i += 2) {
    auto nibble = [](char c) -> int {
      if (c >= '0' && c <= '9') {
        return c - '0';
      }
      if (c >= 'a' && c <= 'f') {
        return c - 'a' + 10;
      }
      if (c >= 'A' && c <= 'F') {
        return c - 'A' + 10;
      }
      return -1;
    };
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return false;
    }
    out[i / 2] = static_cast<uint8_t>(hi << 4 | lo);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string path = argv[1];
  bool dump = false;
  bool jit_stats = false;
  int invocations = 1;
  std::string ctx_hex;
  ExecEngine engine = ExecEngine::kInterp;
  std::vector<std::string> fault_specs;
  bool metrics_json = false;
  bool concurrency_report = false;
  bool trace_on = false;
  int num_shards = 0;  // 0: classic mock-kernel path
  std::string trace_path;
  for (int i = 2; i < argc; i++) {
    std::string arg = argv[i];
    if (arg == "--dump") {
      dump = true;
    } else if (arg == "--fault" || arg.rfind("--fault=", 0) == 0) {
      std::string f;
      if (arg == "--fault") {
        if (i + 1 >= argc) {
          return Usage();
        }
        f = argv[++i];
      } else {
        f = arg.substr(std::strlen("--fault="));
      }
      if (f == "list") {
        for (const std::string& name : FaultRegistry::Instance().Names()) {
          std::printf("%s\n", name.c_str());
        }
        return 0;
      }
      fault_specs.push_back(std::move(f));
    } else if (arg == "--invoke" && i + 1 < argc) {
      invocations = std::atoi(argv[++i]);
    } else if (arg == "--ctx" && i + 1 < argc) {
      ctx_hex = argv[++i];
    } else if (arg == "--engine" || arg.rfind("--engine=", 0) == 0) {
      std::string e;
      if (arg == "--engine") {
        if (i + 1 >= argc) {
          return Usage();
        }
        e = argv[++i];
      } else {
        e = arg.substr(std::strlen("--engine="));
      }
      if (e == "interp") {
        engine = ExecEngine::kInterp;
      } else if (e == "jit") {
        engine = ExecEngine::kJit;
      } else {
        std::fprintf(stderr, "kflex_run: unknown engine '%s'\n", e.c_str());
        return Usage();
      }
    } else if (arg == "--jit-stats") {
      jit_stats = true;
    } else if (arg == "--shards" || arg.rfind("--shards=", 0) == 0) {
      std::string n;
      if (arg == "--shards") {
        if (i + 1 >= argc) {
          return Usage();
        }
        n = argv[++i];
      } else {
        n = arg.substr(std::strlen("--shards="));
      }
      num_shards = std::atoi(n.c_str());
      if (num_shards < 1) {
        std::fprintf(stderr, "kflex_run: bad --shards '%s'\n", n.c_str());
        return Usage();
      }
    } else if (arg == "--metrics" || arg == "--metrics=json") {
      metrics_json = true;
    } else if (arg == "--concurrency-report") {
      concurrency_report = true;
    } else if (arg == "--trace" || arg.rfind("--trace=", 0) == 0) {
      if (arg == "--trace") {
        if (i + 1 >= argc) {
          return Usage();
        }
        trace_path = argv[++i];
      } else {
        trace_path = arg.substr(std::strlen("--trace="));
      }
      trace_on = true;
    } else {
      return Usage();
    }
  }

  // Enable before the load so pipeline events (verifier decision, Kie stats,
  // load-time page-ins, JIT compile) land in the snapshot too.
  if (metrics_json) {
    Obs::Instance().EnableMetrics(true);
  }
  if (trace_on) {
    Obs::Instance().EnableTrace(true);
  }

  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "kflex_run: cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();

  auto program = ParseTextProgram(buffer.str());
  if (!program.ok()) {
    std::fprintf(stderr, "kflex_run: parse error: %s\n", program.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed '%s': %zu insns, hook=%s, heap=%llu\n", program->name.c_str(),
              program->size(), HookName(program->hook),
              static_cast<unsigned long long>(program->heap_size));

  RuntimeOptions runtime_options;
  for (const std::string& spec : fault_specs) {
    // Validate here for a friendly message; the runtime re-arms (idempotent)
    // and would abort on a bad spec.
    Status st = FaultRegistry::Instance().ArmSpec(spec);
    if (!st.ok()) {
      std::fprintf(stderr, "kflex_run: bad --fault '%s': %s\n", spec.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    runtime_options.fault_specs.push_back(spec);
  }
  LoadOptions load_options;
  load_options.engine = engine;

  std::unique_ptr<MockKernel> kernel;
  std::unique_ptr<ShardedRuntime> sharded;
  Runtime* rt = nullptr;
  ExtensionId id = 0;     // the loaded extension (home replica when sharded)
  ShardExtId sharded_id = 0;
  if (num_shards > 0) {
    ShardedRuntimeOptions shard_options;
    shard_options.num_shards = num_shards;
    shard_options.runtime = runtime_options;
    sharded = std::make_unique<ShardedRuntime>(shard_options);
    rt = &sharded->runtime();
    auto sid = sharded->Load(*program, load_options);
    if (!sid.ok()) {
      std::fprintf(stderr, "kflex_run: load rejected: %s\n",
                   sid.status().ToString().c_str());
      return 1;
    }
    sharded_id = *sid;
    const ShardPlacement& place = sharded->placement(sharded_id);
    id = place.replicas[place.replicated ? static_cast<size_t>(place.home_shard) : 0];
    std::printf("sharded: %d shard(s), certificate=%s, %s (home shard %d, %zu replica%s)\n",
                num_shards, ShardSafetyName(place.safety),
                place.replicated ? "replicated" : "pinned", place.home_shard,
                place.replicas.size(), place.replicas.size() == 1 ? "" : "s");
  } else {
    kernel = std::make_unique<MockKernel>(runtime_options);
    rt = &kernel->runtime();
    auto loaded = rt->Load(*program, load_options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "kflex_run: load rejected: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    id = *loaded;
  }
  const InstrumentedProgram& ip = rt->instrumented(id);
  std::printf(
      "verified + instrumented: %zu insns out, %zu guards (%zu elided), %zu formation, "
      "%zu cancellation points\n",
      ip.stats.insns_out, ip.stats.guards_emitted, ip.stats.guards_elided,
      ip.stats.formation_guards, ip.stats.cancellation_points);
  EngineInfo ei = rt->engine_info(id);
  std::printf("engine: requested=%s used=%s\n", ExecEngineName(ei.requested),
              ExecEngineName(ei.used));
  if (jit_stats) {
    if (ei.used == ExecEngine::kJit) {
      std::printf(
          "jit: %llu code bytes, compiled %llu insns in %.1f us, %llu mem sites "
          "(%llu inline fast paths), %llu helper sites\n",
          static_cast<unsigned long long>(ei.stats.code_bytes),
          static_cast<unsigned long long>(ei.stats.insns_compiled),
          static_cast<double>(ei.stats.compile_ns) / 1000.0,
          static_cast<unsigned long long>(ei.stats.mem_sites),
          static_cast<unsigned long long>(ei.stats.inline_fast_paths),
          static_cast<unsigned long long>(ei.stats.helper_sites));
    } else if (ei.requested == ExecEngine::kJit) {
      std::printf("jit: fell back to interpreter: %s\n", ei.fallback_reason.c_str());
    } else {
      std::printf("jit: not requested\n");
    }
  }
  if (concurrency_report) {
    // The certificate computed at load (docs/concurrency.md): what the
    // sharded dispatcher consults before running invocations concurrently.
    const ConcurrencyReport& c = ip.concurrency;
    std::printf("concurrency: certificate=%s (engine_info: %s)\n", ShardSafetyName(c.safety),
                ShardSafetyName(ei.shard_safety));
    std::printf(
        "concurrency: %zu map access(es) (%zu unprotected), %zu heap access(es) "
        "(%zu unprotected), %zu atomic, %zu lock-protected, %zu lock-order edge(s)\n",
        c.map_accesses, c.unprotected_map_accesses, c.heap_accesses,
        c.unprotected_heap_accesses, c.atomic_accesses, c.locked_accesses, c.edges.size());
    for (const ConcurrencyFinding& f : c.findings) {
      std::printf("concurrency: pc %zu: [%s] %s\n", f.pc, ConcurrencyFindingKindName(f.kind),
                  f.message.c_str());
    }
    for (const LockOrderEdge& e : c.edges) {
      std::printf("concurrency: lock-order edge: heap offset %llu -> %llu (insn %zu)\n",
                  static_cast<unsigned long long>(e.from),
                  static_cast<unsigned long long>(e.to), e.pc);
    }
  }
  if (dump) {
    std::printf("---- verified program ----\n%s", ProgramToString(*program).c_str());
    std::printf("---- instrumented program ----\n%s", ProgramToString(ip.program).c_str());
  }
  if (sharded != nullptr || kernel->Attach(id).ok()) {
    uint8_t ctx[kCtxSize] = {0};
    if (!ctx_hex.empty() && !ParseHex(ctx_hex, ctx, sizeof(ctx))) {
      std::fprintf(stderr, "kflex_run: bad --ctx hex\n");
      return 1;
    }
    for (int i = 0; i < invocations; i++) {
      InvokeResult r;
      if (sharded != nullptr) {
        // Steer the way the dispatcher would: by the ctx flow hash (KV key
        // bytes when present, else the packet 5-tuple).
        r = sharded->InvokeSync(sharded_id, ShardHashKvCtx(ctx, sizeof(ctx)), ctx,
                                sizeof(ctx));
      } else {
        r = kernel->Deliver(program->hook, 0, ctx, sizeof(ctx));
      }
      std::printf("invocation %d: verdict=%lld insns=%llu%s\n", i + 1,
                  static_cast<long long>(r.verdict), static_cast<unsigned long long>(r.insns),
                  r.cancelled ? " (CANCELLED)" : "");
      if (r.cancelled) {
        break;
      }
    }
  }
  if (!fault_specs.empty()) {
    for (const FaultRegistry::PointStats& ps : FaultRegistry::Instance().Stats()) {
      if (!ps.armed) {
        continue;
      }
      std::printf("fault %s:%s hits=%llu fails=%llu\n", ps.name.c_str(), ps.policy.c_str(),
                  static_cast<unsigned long long>(ps.hits),
                  static_cast<unsigned long long>(ps.fails));
    }
    InvariantReport sweep = rt->SweepInvariants(id);
    std::printf("invariant sweep: %s\n", sweep.ToString().c_str());
  }
  if (trace_on) {
    FILE* out = stdout;
    if (trace_path != "-") {
      out = std::fopen(trace_path.c_str(), "w");
      if (out == nullptr) {
        std::fprintf(stderr, "kflex_run: cannot write %s\n", trace_path.c_str());
        return 1;
      }
    }
    for (const TraceEvent& e : Obs::Instance().SnapshotTrace()) {
      const ObsEventDef* def = FindObsEvent(e.code);
      std::fprintf(out, "ts=%llu cpu=%u ext=%u %s %s=%llu %s=%llu\n",
                   static_cast<unsigned long long>(e.ts_ns), e.cpu, e.ext,
                   def != nullptr ? def->name : "?",
                   def != nullptr ? def->arg0 : "a0",
                   static_cast<unsigned long long>(e.a0),
                   def != nullptr ? def->arg1 : "a1",
                   static_cast<unsigned long long>(e.a1));
    }
    std::fprintf(out, "# dropped=%llu emitted=%llu\n",
                 static_cast<unsigned long long>(Obs::Instance().TraceDropped()),
                 static_cast<unsigned long long>(Obs::Instance().TraceEmitted()));
    if (out != stdout) {
      std::fclose(out);
    }
  }
  if (metrics_json) {
    // The JSON document starts at the first line that is exactly "{";
    // kflex-top skips any leading human-readable lines.
    std::string doc = ObsSnapshotToJson(rt->SnapshotMetrics());
    if (sharded != nullptr) {
      // Splice the per-shard dispatcher counters in as a top-level "shards"
      // array (additive: the kflex-top schema check treats it as optional).
      size_t brace = doc.rfind('}');
      if (brace != std::string::npos) {
        doc.insert(brace, ",\n  \"shards\": " + sharded->StatsJson() + "\n");
      }
    }
    std::printf("%s", doc.c_str());
  }
  return 0;
}
