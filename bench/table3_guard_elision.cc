// Table 3: SFI guard instructions elided by the verifier's range analysis,
// per data structure and operation. Guards that form a new heap pointer from
// an untrusted scalar are never elidable and are reported separately, per
// the paper's accounting ("we do not show numbers for the two network
// sketches since the safety of all memory accesses in the sketch can be
// verified statically").
#include <cstdio>

#include "src/apps/ds/ds.h"
#include "src/apps/ds/harness.h"
#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/kie/kie.h"
#include "src/verifier/verifier.h"

using namespace kflex;

int main() {
  std::printf("==========================================================================\n");
  std::printf("Table 3: guard instructions elided via verifier range analysis\n");
  std::printf("  paper: 76%% of pointer-manipulation guards elided on average;\n");
  std::printf("  100%% for several ops; sketches verify fully statically\n");
  std::printf("==========================================================================\n");
  std::printf("  %-22s %8s %8s %8s %9s %10s %7s %7s\n", "function", "sites", "elided",
              "emitted", "elided%", "formation", "objtbl", "pruned");

  struct Case {
    const char* name;
    DsBuilder builder;
  };
  const Case cases[] = {
      {"Linked list", BuildLinkedList}, {"Hashmap", BuildHashMap},
      {"RBTree", BuildRbTree},          {"Skiplist", BuildSkipList},
      {"CountMin sketch", BuildCountMinSketch},
      {"Count sketch", BuildCountSketch},
  };

  size_t total_sites = 0;
  size_t total_elided = 0;
  size_t total_objtbl = 0;
  size_t total_pruned_entries = 0;
  size_t total_pruned_edges = 0;
  for (const Case& c : cases) {
    for (DsOp op : {DsOp::kUpdate, DsOp::kLookup, DsOp::kDelete}) {
      DsBuild build = c.builder(op, kDsHeapSize);
      auto analysis = Verify(build.program, VerifyOptions{});
      if (!analysis.ok()) {
        std::fprintf(stderr, "%s %s: %s\n", c.name, DsOpName(op),
                     analysis.status().ToString().c_str());
        return 1;
      }
      auto ip = Instrument(build.program, *analysis, HeapLayout::ForSize(kDsHeapSize), {});
      if (!ip.ok()) {
        return 1;
      }
      const KieStats& stats = ip->stats;
      if (stats.pointer_guard_sites == 0 && stats.formation_guards == 0) {
        continue;  // no heap accesses in this op (e.g., sketch delete no-op)
      }
      char label[64];
      std::snprintf(label, sizeof(label), "%s %s", c.name, DsOpName(op));
      double pct = stats.pointer_guard_sites == 0
                       ? 100.0
                       : 100.0 * static_cast<double>(stats.guards_elided) /
                             static_cast<double>(stats.pointer_guard_sites);
      std::printf("  %-22s %8zu %8zu %8zu %8.0f%% %10zu %7zu %7zu\n", label,
                  stats.pointer_guard_sites, stats.guards_elided, stats.guards_emitted, pct,
                  stats.formation_guards, stats.object_table_entries,
                  stats.pruned_object_entries);
      total_sites += stats.pointer_guard_sites;
      total_elided += stats.guards_elided;
      total_objtbl += stats.object_table_entries;
      total_pruned_entries += stats.pruned_object_entries;
      total_pruned_edges += stats.pruned_back_edges;
    }
  }
  // Liveness-pruned object tables need a program that actually holds a
  // kernel resource across a Cp in several locations: a socket aliased in a
  // dead register (never read again) and a live one (used for the release).
  {
    Assembler a;
    a.Mov(R7, R1);
    a.StImm(BPF_W, R10, -16, 1);
    a.StImm(BPF_W, R10, -12, 2);
    a.Mov(R2, R10);
    a.AddImm(R2, -16);
    a.MovImm(R3, 8);
    a.MovImm(R4, 0);
    a.MovImm(R5, 0);
    a.Call(kHelperSkLookupUdp);
    auto iff = a.IfImm(BPF_JNE, R0, 0);
    a.Mov(R6, R0);  // dead alias: the old table policy would record it
    a.Mov(R8, R0);  // live alias
    a.MovImm(R0, 0);
    a.Ldx(BPF_DW, R3, R7, 0);
    a.LoadHeapAddr(R2, 64);
    a.Add(R2, R3);
    a.StImm(BPF_DW, R2, 0, 5);  // Cp while the socket is held
    a.Mov(R1, R8);
    a.Call(kHelperSkRelease);
    a.EndIf(iff);
    a.MovImm(R0, 0);
    a.Exit();
    auto p = a.Finish("sock_holder", Hook::kXdp, ExtensionMode::kKflex, kDsHeapSize);
    auto analysis = p.ok() ? Verify(*p, VerifyOptions{}) : p.status();
    auto ip = analysis.ok()
                  ? Instrument(*p, *analysis, HeapLayout::ForSize(kDsHeapSize), {})
                  : analysis.status();
    if (!ip.ok()) {
      std::fprintf(stderr, "Socket holder: %s\n", ip.status().ToString().c_str());
      return 1;
    }
    const KieStats& stats = ip->stats;
    std::printf("  %-22s %8zu %8zu %8zu %8.0f%% %10zu %7zu %7zu\n",
                "Socket holder", stats.pointer_guard_sites, stats.guards_elided,
                stats.guards_emitted,
                stats.pointer_guard_sites == 0
                    ? 100.0
                    : 100.0 * static_cast<double>(stats.guards_elided) /
                          static_cast<double>(stats.pointer_guard_sites),
                stats.formation_guards, stats.object_table_entries,
                stats.pruned_object_entries);
    total_sites += stats.pointer_guard_sites;
    total_elided += stats.guards_elided;
    total_objtbl += stats.object_table_entries;
    total_pruned_entries += stats.pruned_object_entries;
    total_pruned_edges += stats.pruned_back_edges;
  }

  std::printf("  %-22s %8zu %8zu %8s %8.0f%%\n", "TOTAL", total_sites, total_elided, "",
              total_sites == 0 ? 0.0
                               : 100.0 * static_cast<double>(total_elided) /
                                     static_cast<double>(total_sites));
  std::printf(
      "  object tables: %zu entries total; liveness pruned %zu dead handle entries;\n"
      "  CFG loop scoping pruned %zu cancellation back edges\n",
      total_objtbl, total_pruned_entries, total_pruned_edges);
  return 0;
}
