// Table 3: SFI guard instructions elided by the verifier's range analysis,
// per data structure and operation. Guards that form a new heap pointer from
// an untrusted scalar are never elidable and are reported separately, per
// the paper's accounting ("we do not show numbers for the two network
// sketches since the safety of all memory accesses in the sketch can be
// verified statically").
#include <cstdio>

#include "src/apps/ds/ds.h"
#include "src/apps/ds/harness.h"
#include "src/kie/kie.h"
#include "src/verifier/verifier.h"

using namespace kflex;

int main() {
  std::printf("==========================================================================\n");
  std::printf("Table 3: guard instructions elided via verifier range analysis\n");
  std::printf("  paper: 76%% of pointer-manipulation guards elided on average;\n");
  std::printf("  100%% for several ops; sketches verify fully statically\n");
  std::printf("==========================================================================\n");
  std::printf("  %-22s %8s %8s %8s %9s %10s\n", "function", "sites", "elided", "emitted",
              "elided%", "formation");

  struct Case {
    const char* name;
    DsBuilder builder;
  };
  const Case cases[] = {
      {"Linked list", BuildLinkedList}, {"Hashmap", BuildHashMap},
      {"RBTree", BuildRbTree},          {"Skiplist", BuildSkipList},
      {"CountMin sketch", BuildCountMinSketch},
      {"Count sketch", BuildCountSketch},
  };

  size_t total_sites = 0;
  size_t total_elided = 0;
  for (const Case& c : cases) {
    for (DsOp op : {DsOp::kUpdate, DsOp::kLookup, DsOp::kDelete}) {
      DsBuild build = c.builder(op, kDsHeapSize);
      auto analysis = Verify(build.program, VerifyOptions{});
      if (!analysis.ok()) {
        std::fprintf(stderr, "%s %s: %s\n", c.name, DsOpName(op),
                     analysis.status().ToString().c_str());
        return 1;
      }
      auto ip = Instrument(build.program, *analysis, HeapLayout::ForSize(kDsHeapSize), {});
      if (!ip.ok()) {
        return 1;
      }
      const KieStats& stats = ip->stats;
      if (stats.pointer_guard_sites == 0 && stats.formation_guards == 0) {
        continue;  // no heap accesses in this op (e.g., sketch delete no-op)
      }
      char label[64];
      std::snprintf(label, sizeof(label), "%s %s", c.name, DsOpName(op));
      double pct = stats.pointer_guard_sites == 0
                       ? 100.0
                       : 100.0 * static_cast<double>(stats.guards_elided) /
                             static_cast<double>(stats.pointer_guard_sites);
      std::printf("  %-22s %8zu %8zu %8zu %8.0f%% %10zu\n", label, stats.pointer_guard_sites,
                  stats.guards_elided, stats.guards_emitted, pct, stats.formation_guards);
      total_sites += stats.pointer_guard_sites;
      total_elided += stats.guards_elided;
    }
  }
  std::printf("  %-22s %8zu %8zu %8s %8.0f%%\n", "TOTAL", total_sites, total_elided, "",
              total_sites == 0 ? 0.0
                               : 100.0 * static_cast<double>(total_elided) /
                                     static_cast<double>(total_sites));
  return 0;
}
