// Table 3: SFI guard instructions elided by the verifier's range analysis,
// per data structure and operation. Guards that form a new heap pointer from
// an untrusted scalar are never elidable and are reported separately, per
// the paper's accounting ("we do not show numbers for the two network
// sketches since the safety of all memory accesses in the sketch can be
// verified statically").
//
// Since the bytecode optimizer landed (src/verifier/opt.h), each workload is
// instrumented twice: once through the PR-1 pipeline (emit0) and once through
// the optimizer with its guard plan (emit1). The "domin" column counts guard
// sites whose SANITIZE was skipped because an earlier guard on the same base
// dominates the access; "static%" is the share of sites discharged without a
// fresh guard at runtime (range elision + dominance).
#include <cstdio>

#include "src/apps/ds/ds.h"
#include "src/apps/ds/harness.h"
#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/kie/kie.h"
#include "src/verifier/opt.h"
#include "src/verifier/verifier.h"

using namespace kflex;

namespace {

struct Row {
  KieStats base;  // PR-1 pipeline: Verify -> Instrument
  KieStats opt;   // Verify -> Optimize -> Instrument(plan)
};

StatusOr<Row> Measure(const Program& p) {
  auto analysis = Verify(p, VerifyOptions{});
  if (!analysis.ok()) {
    return analysis.status();
  }
  Row row;
  auto base = Instrument(p, *analysis, HeapLayout::ForSize(p.heap_size), {});
  if (!base.ok()) {
    return base.status();
  }
  row.base = base->stats;
  auto opt = Optimize(p, *analysis);
  if (!opt.ok()) {
    return opt.status();
  }
  auto ip = Instrument(opt->program, opt->analysis, HeapLayout::ForSize(p.heap_size), {},
                       &opt->plan);
  if (!ip.ok()) {
    return ip.status();
  }
  row.opt = ip->stats;
  return row;
}

void PrintRow(const char* label, const Row& r) {
  const KieStats& s = r.opt;
  double pct = s.pointer_guard_sites == 0
                   ? 100.0
                   : 100.0 * static_cast<double>(s.guards_elided + s.guards_dominated) /
                         static_cast<double>(s.pointer_guard_sites);
  std::printf("  %-22s %6zu %7zu %6zu %6zu %6zu %7.0f%% %10zu %7zu %7zu\n", label,
              s.pointer_guard_sites, s.guards_elided, s.guards_dominated, r.base.guards_emitted,
              s.guards_emitted, pct, s.formation_guards, s.object_table_entries,
              s.pruned_object_entries);
}

}  // namespace

int main() {
  std::printf("==========================================================================\n");
  std::printf("Table 3: guard instructions elided via verifier range analysis\n");
  std::printf("  paper: 76%% of pointer-manipulation guards elided on average;\n");
  std::printf("  100%% for several ops; sketches verify fully statically\n");
  std::printf("  emit0 = guards emitted by the PR-1 pipeline; emit1 = after the\n");
  std::printf("  optimizer's dominance-based guard plan (domin = sites reusing a\n");
  std::printf("  dominating guard's sanitized address)\n");
  std::printf("==========================================================================\n");
  std::printf("  %-22s %6s %7s %6s %6s %6s %8s %10s %7s %7s\n", "function", "sites", "elided",
              "domin", "emit0", "emit1", "static%", "formation", "objtbl", "pruned");

  struct Case {
    const char* name;
    DsBuilder builder;
  };
  const Case cases[] = {
      {"Linked list", BuildLinkedList}, {"Hashmap", BuildHashMap},
      {"RBTree", BuildRbTree},          {"Skiplist", BuildSkipList},
      {"CountMin sketch", BuildCountMinSketch},
      {"Count sketch", BuildCountSketch},
  };

  size_t total_sites = 0;
  size_t total_elided = 0;
  size_t total_dominated = 0;
  size_t total_emit_base = 0;
  size_t total_emit_opt = 0;
  size_t total_objtbl = 0;
  size_t total_pruned_entries = 0;
  size_t total_pruned_edges = 0;
  auto account = [&](const Row& r) {
    total_sites += r.opt.pointer_guard_sites;
    total_elided += r.opt.guards_elided;
    total_dominated += r.opt.guards_dominated;
    total_emit_base += r.base.guards_emitted;
    total_emit_opt += r.opt.guards_emitted;
    total_objtbl += r.opt.object_table_entries;
    total_pruned_entries += r.opt.pruned_object_entries;
    total_pruned_edges += r.opt.pruned_back_edges;
  };

  for (const Case& c : cases) {
    for (DsOp op : {DsOp::kUpdate, DsOp::kLookup, DsOp::kDelete}) {
      DsBuild build = c.builder(op, kDsHeapSize);
      auto row = Measure(build.program);
      if (!row.ok()) {
        std::fprintf(stderr, "%s %s: %s\n", c.name, DsOpName(op),
                     row.status().ToString().c_str());
        return 1;
      }
      if (row->opt.pointer_guard_sites == 0 && row->opt.formation_guards == 0) {
        continue;  // no heap accesses in this op (e.g., sketch delete no-op)
      }
      char label[64];
      std::snprintf(label, sizeof(label), "%s %s", c.name, DsOpName(op));
      PrintRow(label, *row);
      account(*row);
    }
  }

  // Liveness-pruned object tables need a program that actually holds a
  // kernel resource across a Cp in several locations: a socket aliased in a
  // dead register (never read again) and a live one (used for the release).
  {
    Assembler a;
    a.Mov(R7, R1);
    a.StImm(BPF_W, R10, -16, 1);
    a.StImm(BPF_W, R10, -12, 2);
    a.Mov(R2, R10);
    a.AddImm(R2, -16);
    a.MovImm(R3, 8);
    a.MovImm(R4, 0);
    a.MovImm(R5, 0);
    a.Call(kHelperSkLookupUdp);
    auto iff = a.IfImm(BPF_JNE, R0, 0);
    a.Mov(R6, R0);  // dead alias: the old table policy would record it
    a.Mov(R8, R0);  // live alias
    a.MovImm(R0, 0);
    a.Ldx(BPF_DW, R3, R7, 0);
    a.LoadHeapAddr(R2, 64);
    a.Add(R2, R3);
    a.StImm(BPF_DW, R2, 0, 5);  // Cp while the socket is held
    a.Mov(R1, R8);
    a.Call(kHelperSkRelease);
    a.EndIf(iff);
    a.MovImm(R0, 0);
    a.Exit();
    auto p = a.Finish("sock_holder", Hook::kXdp, ExtensionMode::kKflex, kDsHeapSize);
    auto row = p.ok() ? Measure(*p) : p.status();
    if (!row.ok()) {
      std::fprintf(stderr, "Socket holder: %s\n", row.status().ToString().c_str());
      return 1;
    }
    PrintRow("Socket holder", *row);
    account(*row);
  }

  // Scatter-style workloads where range analysis cannot elide (the base is
  // heap + an untrusted ctx-derived u32, wider than heap + guard zone) but a
  // single guard dominates every later access through the same base. These
  // are the sites the optimizer's availability pass targets.
  {
    Assembler a;
    a.Ldx(BPF_W, R6, R1, 0);  // untrusted flow index from ctx
    a.LoadHeapAddr(R7, 0);
    a.Add(R7, R6);  // unproven base: every access needs a guard
    a.StImm(BPF_DW, R7, 0, 1);
    a.StImm(BPF_DW, R7, 8, 2);
    a.StImm(BPF_DW, R7, 16, 3);
    a.StImm(BPF_DW, R7, 24, 4);
    a.MovImm(R0, 0);
    a.Exit();
    auto p = a.Finish("flow_scatter", Hook::kXdp, ExtensionMode::kKflex, kDsHeapSize);
    auto row = p.ok() ? Measure(*p) : p.status();
    if (!row.ok()) {
      std::fprintf(stderr, "Flow scatter: %s\n", row.status().ToString().c_str());
      return 1;
    }
    PrintRow("Flow scatter", *row);
    account(*row);
  }
  {
    Assembler a;
    a.Ldx(BPF_W, R6, R1, 0);  // untrusted bucket index from ctx
    a.LoadHeapAddr(R8, 0);
    a.Add(R8, R6);  // unproven base
    a.Ldx(BPF_DW, R2, R8, 0);
    a.AddImm(R2, 1);
    a.Stx(BPF_DW, R8, 0, R2);  // read-modify-write of the bucket count
    a.Ldx(BPF_DW, R0, R8, 8);  // neighboring field through the same base
    a.Exit();
    auto p = a.Finish("histogram_pair", Hook::kXdp, ExtensionMode::kKflex, kDsHeapSize);
    auto row = p.ok() ? Measure(*p) : p.status();
    if (!row.ok()) {
      std::fprintf(stderr, "Histogram pair: %s\n", row.status().ToString().c_str());
      return 1;
    }
    PrintRow("Histogram pair", *row);
    account(*row);
  }

  std::printf("  %-22s %6zu %7zu %6zu %6zu %6zu %7.0f%%\n", "TOTAL", total_sites, total_elided,
              total_dominated, total_emit_base, total_emit_opt,
              total_sites == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(total_elided + total_dominated) /
                        static_cast<double>(total_sites));
  std::printf(
      "  object tables: %zu entries total; liveness pruned %zu dead handle entries;\n"
      "  CFG loop scoping pruned %zu cancellation back edges\n",
      total_objtbl, total_pruned_entries, total_pruned_edges);
  if (total_emit_opt >= total_emit_base && total_emit_base > 0) {
    std::fprintf(stderr, "optimizer did not reduce emitted guards (%zu -> %zu)\n",
                 total_emit_base, total_emit_opt);
    return 1;
  }
  return 0;
}
