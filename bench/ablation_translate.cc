// Ablation (§3.4): cost of translate-on-store. The paper lets developers
// disable translation on performance-critical paths; this quantifies what
// that saves on Memcached SETs (each insert stores one heap pointer).
#include <cstdio>

#include "src/base/logging.h"

#include "src/apps/memcached.h"
#include "src/sim/kv_models.h"

using namespace kflex;

namespace {

double MeanSetInsns(bool translate) {
  MockKernel kernel;
  KieOptions kie;
  kie.translate_on_store = translate;
  auto driver = KflexMemcachedDriver::Create(kernel, {}, kie);
  KFLEX_CHECK(driver.ok());
  uint64_t total = 0;
  constexpr int kOps = 2000;
  for (int i = 0; i < kOps; i++) {
    total += driver->Set(0, static_cast<uint64_t>(i), ValueForKey(static_cast<uint64_t>(i)))
                 .insns;
  }
  return static_cast<double>(total) / kOps;
}

}  // namespace

int main() {
  std::printf("==========================================================================\n");
  std::printf("Ablation: translate-on-store for shared heap pointers (SS3.4)\n");
  std::printf("==========================================================================\n");
  double off = MeanSetInsns(false);
  double on = MeanSetInsns(true);
  std::printf("  Memcached SET: %.1f insns without translation, %.1f with (+%.2f%%)\n", off, on,
              100.0 * (on - off) / off);
  std::printf("  (disabling translation requires the application to translate stored\n");
  std::printf("   pointers itself; KFlex supports both, SS3.4)\n");
  return 0;
}
