// Figure 5: update/lookup/delete performance for the five extension data
// structures under three flavours — KMod (trusted, uninstrumented), KFlex-PM
// (performance mode: unguarded reads) and KFlex (full SFI). All flavours run
// identical bytecode on the same execution engine, so the deltas isolate the
// instrumentation overhead, as in the paper's kernel-module comparison.
//
// Reported per op: simulated latency (executed insns x ns_per_insn), the
// implied single-thread throughput, and the overhead vs KMod. The linked
// list holds 64 K elements and its lookup/delete traverse the list (Fig. 5
// caption); other structures run a mixed working set.
#include <cstdio>
#include <string>
#include <vector>

#include "src/apps/ds/ds.h"
#include "src/apps/ds/harness.h"
#include "src/base/logging.h"
#include "src/base/rng.h"
#include "src/kernel/costmodel.h"

using namespace kflex;

namespace {

struct Flavour {
  const char* name;
  KieOptions kie;
};

std::vector<Flavour> Flavours() {
  KieOptions pm;
  pm.performance_mode = true;
  KieOptions kmod;
  kmod.sfi = false;
  kmod.cancellation = false;
  return {{"KMod", kmod}, {"KFlex-PM", pm}, {"KFlex", KieOptions{}}};
}

struct OpStats {
  double mean_ns = 0;  // effective latency (instrumentation weighted)
};

// Runs `measure_ops` operations of each kind and returns mean effective ns.
struct DsNumbers {
  OpStats update;
  OpStats lookup;
  OpStats del;
};

DsNumbers MeasureDs(const DsBuilder& builder, const KieOptions& kie, const CostModel& cost,
                    uint64_t populate, uint64_t measure_ops, bool traversal_structure) {
  Runtime runtime{RuntimeOptions{1, 1'000'000'000ULL}};
  auto instance = DsInstance::Create(runtime, builder, kie);
  KFLEX_CHECK(instance.ok());
  DsInstance& ds = *instance;
  Rng rng(7);
  for (uint64_t i = 0; i < populate; i++) {
    ds.Update(i + 1, i * 3 + 1);
  }
  DsNumbers out;
  double total;
  auto op_ns = [&] {
    return static_cast<double>(cost.ComputeNs(ds.last_insns(), ds.last_instr_insns()));
  };

  total = 0;
  for (uint64_t i = 0; i < measure_ops; i++) {
    ds.Update(1 + rng.NextBounded(populate), i);
    total += op_ns();
  }
  out.update.mean_ns = total / static_cast<double>(measure_ops);

  total = 0;
  uint64_t lookups = traversal_structure ? measure_ops / 10 : measure_ops;
  for (uint64_t i = 0; i < lookups; i++) {
    ds.Lookup(1 + rng.NextBounded(populate));
    total += op_ns();
  }
  out.lookup.mean_ns = total / static_cast<double>(lookups);

  total = 0;
  uint64_t deletes = traversal_structure ? measure_ops / 10 : measure_ops;
  for (uint64_t i = 0; i < deletes; i++) {
    uint64_t key = 1 + rng.NextBounded(populate);
    ds.Delete(key);
    total += op_ns();
    ds.Update(key, i);  // keep the population stable
  }
  out.del.mean_ns = total / static_cast<double>(deletes);
  return out;
}

void PrintOp(const char* ds, const char* op, double kmod, double pm, double kflex) {
  auto mops = [&](double ns) { return ns > 0 ? 1000.0 / ns : 0.0; };
  std::printf(
      "  %-11s %-7s KMod %9.0f ns (%6.3f Mops)   KFlex-PM %9.0f ns (+%5.1f%%)   KFlex %9.0f "
      "ns (+%5.1f%%)\n",
      ds, op, kmod, mops(kmod), pm, 100.0 * (pm - kmod) / kmod, kflex,
      100.0 * (kflex - kmod) / kmod);
}

}  // namespace

int main() {
  std::printf("==========================================================================\n");
  std::printf("Figure 5: extension data structures, KMod vs KFlex-PM vs KFlex\n");
  std::printf("  paper: ~9%% throughput / ~31.7%% latency overhead for KFlex vs KMod;\n");
  std::printf("  performance mode recovers 3-4%% on pointer-chasing structures\n");
  std::printf("==========================================================================\n");

  CostModel cost;
  struct DsCase {
    const char* name;
    DsBuilder builder;
    uint64_t populate;
    uint64_t measure;
    bool traversal;
  };
  const DsCase cases[] = {
      {"HashMap", BuildHashMap, 65536, 4000, false},
      {"RBTree", BuildRbTree, 65536, 4000, false},
      {"LinkedList", BuildLinkedList, 65536, 40, true},
      {"SkipList", BuildSkipList, 65536, 4000, false},
      {"CountMin", BuildCountMinSketch, 4096, 4000, false},
      {"CountSketch", BuildCountSketch, 4096, 4000, false},
  };
  auto flavours = Flavours();

  for (const DsCase& c : cases) {
    DsNumbers kmod =
        MeasureDs(c.builder, flavours[0].kie, cost, c.populate, c.measure, c.traversal);
    DsNumbers pm =
        MeasureDs(c.builder, flavours[1].kie, cost, c.populate, c.measure, c.traversal);
    DsNumbers kflex =
        MeasureDs(c.builder, flavours[2].kie, cost, c.populate, c.measure, c.traversal);
    PrintOp(c.name, "update", kmod.update.mean_ns, pm.update.mean_ns, kflex.update.mean_ns);
    PrintOp(c.name, "lookup", kmod.lookup.mean_ns, pm.lookup.mean_ns, kflex.lookup.mean_ns);
    if (std::string(c.name).substr(0, 5) != "Count") {
      PrintOp(c.name, "delete", kmod.del.mean_ns, pm.del.mean_ns, kflex.del.mean_ns);
    }
    std::printf("\n");
  }
  return 0;
}
