// Figure 7: co-designed Memcached — kernel fast path plus a 1 Hz user-space
// garbage collector sharing the hash table through the mapped heap (§5.3) —
// vs user-space Memcached running its own GC.
#include "bench/bench_common.h"
#include "src/sim/kv_models.h"

using namespace kflex;

int main() {
  PrintHeader("Figure 7: co-designed Memcached (user-space GC at 1 Hz)",
              "KFlex 2.2-2.9x throughput, 42.8-89.5% lower p99 than user space");
  CostModel cost;
  constexpr int kThreads = 8;
  constexpr uint64_t kKeySpace = 10'000;

  ClosedLoopConfig config;
  config.server_threads = kThreads;
  config.clients = 1024;
  config.total_requests = 120'000;
  config.key_space = kKeySpace;

  for (const MixRow& mix : kMixes) {
    config.get_fraction = mix.get_fraction;

    // User-space baseline: it runs GC too (in-process, same stalls).
    auto user = UserMemcachedSystem::Create(cost, kThreads);
    if (!user.ok()) {
      std::fprintf(stderr, "user: %s\n", user.status().ToString().c_str());
      return 1;
    }
    (*user)->Prepopulate(kKeySpace);
    BackgroundTask user_gc;
    user_gc.interval_ns = 10'000'000;  // simulated-time GC cadence
    user_gc.run = [](uint64_t) -> uint64_t { return kKeySpace * 20; };
    ClosedLoopResult user_result = RunClosedLoop(**user, config, &user_gc);

    auto codesign = CodesignSystem::Create(cost, kThreads);
    if (!codesign.ok()) {
      std::fprintf(stderr, "codesign: %s\n", codesign.status().ToString().c_str());
      return 1;
    }
    (*codesign)->Prepopulate(kKeySpace);
    BackgroundTask gc = (*codesign)->GcTask(10'000'000);
    ClosedLoopResult kflex_result = RunClosedLoop(**codesign, config, &gc);

    PrintKvRow(mix.label, "User space", user_result);
    PrintKvRow(mix.label, "KFlex+GC", kflex_result);
    std::printf("  %-6s KFlex vs user space: %.2fx thpt, %.1f%% lower p99\n\n", mix.label,
                kflex_result.throughput_mops / user_result.throughput_mops,
                100.0 * (1.0 - static_cast<double>(kflex_result.latency.Percentile(0.99)) /
                                   static_cast<double>(user_result.latency.Percentile(0.99))));
  }
  return 0;
}
