// Shared implementation for Figures 2 and 3 (Memcached at 8 / 16 threads).
#ifndef BENCH_FIG_MEMCACHED_H_
#define BENCH_FIG_MEMCACHED_H_

#include "bench/bench_common.h"
#include "src/sim/kv_models.h"

namespace kflex {

inline int RunMemcachedFigure(int server_threads, const char* figure,
                              const char* paper_claim) {
  PrintHeader(figure, paper_claim);
  CostModel cost;
  constexpr uint64_t kKeySpace = 10'000;

  ClosedLoopConfig config;
  config.server_threads = server_threads;
  config.clients = 1024;
  config.total_requests = 120'000;
  config.key_space = kKeySpace;

  for (const MixRow& mix : kMixes) {
    config.get_fraction = mix.get_fraction;

    auto user = UserMemcachedSystem::Create(cost, server_threads);
    if (!user.ok()) {
      std::fprintf(stderr, "user system: %s\n", user.status().ToString().c_str());
      return 1;
    }
    (*user)->Prepopulate(kKeySpace);
    ClosedLoopResult user_result = RunClosedLoop(**user, config);

    auto bmc = BmcSystem::Create(cost, server_threads);
    if (!bmc.ok()) {
      std::fprintf(stderr, "bmc system: %s\n", bmc.status().ToString().c_str());
      return 1;
    }
    (*bmc)->Prepopulate(kKeySpace);
    ClosedLoopResult bmc_result = RunClosedLoop(**bmc, config);

    auto kflex = KflexMemcachedSystem::Create(cost, server_threads);
    if (!kflex.ok()) {
      std::fprintf(stderr, "kflex system: %s\n", kflex.status().ToString().c_str());
      return 1;
    }
    (*kflex)->Prepopulate(kKeySpace);
    ClosedLoopResult kflex_result = RunClosedLoop(**kflex, config);

    PrintKvRow(mix.label, "User space", user_result);
    PrintKvRow(mix.label, "BMC", bmc_result);
    PrintKvRow(mix.label, "KFlex", kflex_result);
    std::printf(
        "  %-6s KFlex vs BMC: %.2fx thpt, %.2fx lower p99 | vs user space: %.2fx thpt, "
        "%.2fx lower p99\n\n",
        mix.label, kflex_result.throughput_mops / bmc_result.throughput_mops,
        static_cast<double>(bmc_result.latency.Percentile(0.99)) /
            static_cast<double>(kflex_result.latency.Percentile(0.99)),
        kflex_result.throughput_mops / user_result.throughput_mops,
        static_cast<double>(user_result.latency.Percentile(0.99)) /
            static_cast<double>(kflex_result.latency.Percentile(0.99)));
  }
  return 0;
}

}  // namespace kflex

#endif  // BENCH_FIG_MEMCACHED_H_
