// Shared helpers for the figure/table reproduction harnesses.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "src/sim/closedloop.h"

namespace kflex {

inline void PrintHeader(const char* title, const char* paper_claim) {
  std::printf("==========================================================================\n");
  std::printf("%s\n", title);
  std::printf("  paper: %s\n", paper_claim);
  std::printf("==========================================================================\n");
}

struct MixRow {
  const char* label;
  double get_fraction;
};

inline constexpr MixRow kMixes[] = {{"90:10", 0.9}, {"50:50", 0.5}, {"10:90", 0.1}};

inline void PrintKvRow(const char* mix, const char* system, const ClosedLoopResult& r) {
  std::printf("  %-6s %-12s thpt=%7.3f Mops/s   p50=%7llu ns   p99=%8llu ns\n", mix, system,
              r.throughput_mops, static_cast<unsigned long long>(r.latency.Percentile(0.5)),
              static_cast<unsigned long long>(r.latency.Percentile(0.99)));
}

}  // namespace kflex

#endif  // BENCH_BENCH_COMMON_H_
