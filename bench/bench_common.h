// Shared helpers for the figure/table reproduction harnesses.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/sim/closedloop.h"

namespace kflex {

inline void PrintHeader(const char* title, const char* paper_claim) {
  std::printf("==========================================================================\n");
  std::printf("%s\n", title);
  std::printf("  paper: %s\n", paper_claim);
  std::printf("==========================================================================\n");
}

struct MixRow {
  const char* label;
  double get_fraction;
};

inline constexpr MixRow kMixes[] = {{"90:10", 0.9}, {"50:50", 0.5}, {"10:90", 0.1}};

inline void PrintKvRow(const char* mix, const char* system, const ClosedLoopResult& r) {
  std::printf("  %-6s %-12s thpt=%7.3f Mops/s   p50=%7llu ns   p99=%8llu ns\n", mix, system,
              r.throughput_mops, static_cast<unsigned long long>(r.latency.Percentile(0.5)),
              static_cast<unsigned long long>(r.latency.Percentile(0.99)));
}

// Pulls `<flag> <path>` out of argv (so it never reaches google-benchmark's
// own flag parser) and returns the value, or "" when absent.
inline std::string ExtractFlagValue(int* argc, char** argv, const char* flag) {
  std::string value;
  int w = 1;
  for (int i = 1; i < *argc; i++) {
    if (std::strcmp(argv[i], flag) == 0 && i + 1 < *argc) {
      value = argv[++i];
      continue;
    }
    argv[w++] = argv[i];
  }
  *argc = w;
  return value;
}

inline std::string ExtractJsonFlag(int* argc, char** argv) {
  return ExtractFlagValue(argc, argv, "--json");
}

// Machine-readable benchmark results (one row per workload x engine). The
// writer emits a flat JSON array; numeric fields are stored as int64/double
// so downstream tooling needs no schema.
class BenchJson {
 public:
  struct Row {
    std::string workload;
    std::string engine;
    double ns_per_op = 0.0;
    std::vector<std::pair<std::string, int64_t>> fields;
  };

  Row& Add(const std::string& workload, const std::string& engine, double ns_per_op) {
    rows_.push_back(Row{workload, engine, ns_per_op, {}});
    return rows_.back();
  }

  bool Write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return false;
    }
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < rows_.size(); i++) {
      const Row& r = rows_[i];
      std::fprintf(f, "  {\"workload\": \"%s\", \"engine\": \"%s\", \"ns_per_op\": %.2f",
                   r.workload.c_str(), r.engine.c_str(), r.ns_per_op);
      for (const auto& [k, v] : r.fields) {
        std::fprintf(f, ", \"%s\": %lld", k.c_str(), static_cast<long long>(v));
      }
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    return true;
  }

 private:
  std::vector<Row> rows_;
};

}  // namespace kflex

#endif  // BENCH_BENCH_COMMON_H_
