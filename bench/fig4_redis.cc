// Figure 4: Redis offloaded with KFlex (sk_skb hook) vs the parallel
// user-space baseline (KeyDB) across GET:SET mixes.
#include "bench/bench_common.h"
#include "src/sim/kv_models.h"

using namespace kflex;

int main() {
  PrintHeader("Figure 4: Redis (sk_skb) vs KeyDB",
              "KFlex-Redis 1.61-2.14x throughput, 0.97-2.96x lower p99");
  CostModel cost;
  constexpr int kThreads = 8;
  constexpr uint64_t kKeySpace = 10'000;

  ClosedLoopConfig config;
  config.server_threads = kThreads;
  config.clients = 1024;
  config.total_requests = 120'000;
  config.key_space = kKeySpace;

  for (const MixRow& mix : kMixes) {
    config.get_fraction = mix.get_fraction;

    auto keydb = UserRedisSystem::Create(cost, kThreads);
    if (!keydb.ok()) {
      std::fprintf(stderr, "keydb: %s\n", keydb.status().ToString().c_str());
      return 1;
    }
    (*keydb)->Prepopulate(kKeySpace);
    ClosedLoopResult keydb_result = RunClosedLoop(**keydb, config);

    auto kflex = KflexRedisSystem::Create(cost, kThreads);
    if (!kflex.ok()) {
      std::fprintf(stderr, "kflex: %s\n", kflex.status().ToString().c_str());
      return 1;
    }
    (*kflex)->Prepopulate(kKeySpace);
    ClosedLoopResult kflex_result = RunClosedLoop(**kflex, config);

    PrintKvRow(mix.label, "KeyDB", keydb_result);
    PrintKvRow(mix.label, "KFlex", kflex_result);
    std::printf("  %-6s KFlex vs KeyDB: %.2fx thpt, %.2fx lower p99\n\n", mix.label,
                kflex_result.throughput_mops / keydb_result.throughput_mops,
                static_cast<double>(keydb_result.latency.Percentile(0.99)) /
                    static_cast<double>(kflex_result.latency.Percentile(0.99)));
  }
  return 0;
}
