// Figure 3: Memcached at 16 server threads — KFlex's benefits hold
// irrespective of thread count.
#include "bench/fig_memcached.h"

int main() {
  return kflex::RunMemcachedFigure(
      16, "Figure 3: Memcached, 16 server threads",
      "performance benefits are similar despite the change in thread count");
}
