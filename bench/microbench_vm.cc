// Wall-clock microbenchmarks (google-benchmark) for the framework itself:
// interpreter dispatch, SFI sanitization, verifier and Kie throughput,
// allocator and spin-lock hot paths. These complement the simulated-time
// figure harnesses with real host-time numbers for the substrate.
#include <benchmark/benchmark.h>

#include <chrono>
#include <optional>

#include "bench/bench_common.h"
#include "src/obs/obs.h"
#include "src/apps/ds/ds.h"
#include "src/apps/ds/harness.h"
#include "src/apps/memcached.h"
#include "src/base/rng.h"
#include "src/ebpf/assembler.h"
#include "src/runtime/allocator.h"
#include "src/runtime/runtime.h"
#include "src/runtime/spinlock.h"
#include "src/verifier/verifier.h"

namespace kflex {
namespace {

Program TightLoopProgram(int iters) {
  Assembler a;
  a.MovImm(R2, iters);
  a.MovImm(R0, 0);
  auto loop = a.LoopBegin();
  a.LoopBreakIfImm(loop, BPF_JEQ, R2, 0);
  a.AddImm(R0, 3);
  a.XorImm(R0, 7);
  a.SubImm(R2, 1);
  a.LoopEnd(loop);
  a.Exit();
  auto p = a.Finish("tight", Hook::kTracepoint, ExtensionMode::kKflex, 0);
  return std::move(p).value();
}

void BM_VmDispatch(benchmark::State& state) {
  Program p = TightLoopProgram(1024);
  VmEnv env;
  uint8_t ctx[64] = {0};
  env.ctx = ctx;
  env.ctx_size = sizeof(ctx);
  uint64_t insns = 0;
  for (auto _ : state) {
    VmResult r = VmRun(p.insns, env);
    benchmark::DoNotOptimize(r.ret);
    insns += r.insns_executed;
  }
  state.SetItemsProcessed(static_cast<int64_t>(insns));
}
BENCHMARK(BM_VmDispatch);

void BM_SanitizedHeapStores(benchmark::State& state) {
  Assembler a;
  a.Ldx(BPF_DW, R3, R1, 0);
  a.LoadHeapAddr(R2, 64);
  a.Add(R2, R3);  // unknown offset: guarded store
  a.MovImm(R4, 256);
  a.MovImm(R0, 0);
  auto loop = a.LoopBegin();
  a.LoopBreakIfImm(loop, BPF_JEQ, R4, 0);
  a.StImm(BPF_DW, R2, 0, 1);
  a.SubImm(R4, 1);
  a.LoopEnd(loop);
  a.Exit();
  auto p = a.Finish("stores", Hook::kTracepoint, ExtensionMode::kKflex, 1 << 20);

  Runtime runtime{RuntimeOptions{1, 1'000'000'000ULL}};
  LoadOptions lo;
  lo.heap_static_bytes = 128;
  auto id = runtime.Load(*p, lo);
  uint8_t ctx[64] = {0};
  uint64_t stores = 0;
  for (auto _ : state) {
    InvokeResult r = runtime.Invoke(*id, 0, ctx, sizeof(ctx));
    benchmark::DoNotOptimize(r.verdict);
    stores += 256;
  }
  state.SetItemsProcessed(static_cast<int64_t>(stores));
}
BENCHMARK(BM_SanitizedHeapStores);

// Guarded scatter through an unproven base inside a bounded loop: range
// analysis cannot elide these stores, but after the first store per
// iteration the optimizer's availability pass marks the rest dominated, so
// Kie skips their MOV+SANITIZE pair. Arg(0) = PR-1 pipeline (optimizer
// off), Arg(1) = optimizer on; compare wall time and the insns/invoke and
// instr_insns/invoke counters between the two.
void BM_OptimizedGuardedScatter(benchmark::State& state) {
  Assembler a;
  a.Ldx(BPF_W, R6, R1, 0);
  a.LoadHeapAddr(R7, 64);
  a.Add(R7, R6);  // unknown u32 offset: every store needs a guard
  a.MovImm(R4, 256);
  a.MovImm(R0, 0);
  auto loop = a.LoopBegin();
  a.LoopBreakIfImm(loop, BPF_JEQ, R4, 0);
  a.StImm(BPF_DW, R7, 0, 1);
  a.StImm(BPF_DW, R7, 8, 2);
  a.StImm(BPF_DW, R7, 16, 3);
  a.SubImm(R4, 1);
  a.LoopEnd(loop);
  a.Exit();
  auto p = a.Finish("opt_scatter", Hook::kTracepoint, ExtensionMode::kKflex, 1 << 20);

  Runtime runtime{RuntimeOptions{1, 1'000'000'000ULL}};
  LoadOptions lo;
  lo.heap_static_bytes = 128;
  lo.optimize = state.range(0) != 0;
  auto id = runtime.Load(*p, lo);
  uint8_t ctx[64] = {0};
  uint64_t insns = 0;
  uint64_t instr_insns = 0;
  uint64_t invokes = 0;
  for (auto _ : state) {
    InvokeResult r = runtime.Invoke(*id, 0, ctx, sizeof(ctx));
    benchmark::DoNotOptimize(r.verdict);
    insns += r.insns;
    instr_insns += r.instr_insns;
    invokes++;
  }
  state.SetItemsProcessed(static_cast<int64_t>(insns));
  state.counters["insns/invoke"] =
      benchmark::Counter(static_cast<double>(insns) / static_cast<double>(invokes));
  state.counters["instr_insns/invoke"] =
      benchmark::Counter(static_cast<double>(instr_insns) / static_cast<double>(invokes));
}
BENCHMARK(BM_OptimizedGuardedScatter)->Arg(0)->Arg(1);

// The guarded-scatter workload used across engine comparisons: 256 loop
// iterations x 3 guarded 8-byte stores through an unproven heap base.
Program GuardedScatterProgram() {
  Assembler a;
  a.Ldx(BPF_W, R6, R1, 0);
  a.LoadHeapAddr(R7, 64);
  a.Add(R7, R6);
  a.MovImm(R4, 256);
  a.MovImm(R0, 0);
  auto loop = a.LoopBegin();
  a.LoopBreakIfImm(loop, BPF_JEQ, R4, 0);
  a.StImm(BPF_DW, R7, 0, 1);
  a.StImm(BPF_DW, R7, 8, 2);
  a.StImm(BPF_DW, R7, 16, 3);
  a.SubImm(R4, 1);
  a.LoopEnd(loop);
  a.Exit();
  auto p = a.Finish("scatter", Hook::kTracepoint, ExtensionMode::kKflex, 1 << 20);
  return std::move(p).value();
}

// Same optimized pipeline on both engines: Arg(0) = interpreter,
// Arg(1) = native JIT. The wall-time ratio between the two rows is the
// paper's core "compiled extensions" speedup on this substrate.
void BM_GuardedScatterEngine(benchmark::State& state) {
  Program p = GuardedScatterProgram();
  Runtime runtime{RuntimeOptions{1, 1'000'000'000ULL}};
  LoadOptions lo;
  lo.heap_static_bytes = 128;
  lo.engine = state.range(0) != 0 ? ExecEngine::kJit : ExecEngine::kInterp;
  auto id = runtime.Load(p, lo);
  EngineInfo info = runtime.engine_info(*id);
  if (state.range(0) != 0 && info.used != ExecEngine::kJit) {
    state.SkipWithError(("JIT fallback: " + info.fallback_reason).c_str());
    return;
  }
  uint8_t ctx[64] = {0};
  uint64_t insns = 0;
  for (auto _ : state) {
    InvokeResult r = runtime.Invoke(*id, 0, ctx, sizeof(ctx));
    benchmark::DoNotOptimize(r.verdict);
    insns += r.insns;
  }
  state.SetItemsProcessed(static_cast<int64_t>(insns));
  state.SetLabel(ExecEngineName(info.used));
  if (info.used == ExecEngine::kJit) {
    state.counters["code_bytes"] =
        benchmark::Counter(static_cast<double>(info.stats.code_bytes));
  }
}
BENCHMARK(BM_GuardedScatterEngine)->Arg(0)->Arg(1);

void BM_VerifierMemcached(benchmark::State& state) {
  Program p = BuildMemcachedExtension({});
  for (auto _ : state) {
    auto analysis = Verify(p, VerifyOptions{});
    benchmark::DoNotOptimize(analysis.ok());
  }
}
BENCHMARK(BM_VerifierMemcached);

void BM_KieInstrumentMemcached(benchmark::State& state) {
  Program p = BuildMemcachedExtension({});
  auto analysis = Verify(p, VerifyOptions{});
  HeapLayout layout = HeapLayout::ForSize(p.heap_size);
  for (auto _ : state) {
    auto ip = Instrument(p, *analysis, layout, KieOptions{});
    benchmark::DoNotOptimize(ip.ok());
  }
}
BENCHMARK(BM_KieInstrumentMemcached);

void BM_AllocatorAllocFree(benchmark::State& state) {
  HeapSpec spec;
  spec.size = 1 << 22;
  auto heap = ExtensionHeap::Create(spec);
  HeapAllocator alloc(heap.value().get(), 1);
  for (auto _ : state) {
    uint64_t off = alloc.Alloc(0, 96);
    benchmark::DoNotOptimize(off);
    alloc.Free(0, off);
  }
}
BENCHMARK(BM_AllocatorAllocFree);

void BM_SpinLockUncontended(benchmark::State& state) {
  alignas(8) uint64_t word = 0;
  for (auto _ : state) {
    SpinLockOps::Acquire(&word, SpinLockOps::kKernelOwner, nullptr);
    SpinLockOps::Release(&word);
  }
}
BENCHMARK(BM_SpinLockUncontended);

void BM_HashMapLookupWallTime(benchmark::State& state) {
  Runtime runtime{RuntimeOptions{1, 1'000'000'000ULL}};
  auto ds = DsInstance::Create(runtime, BuildHashMap);
  for (uint64_t i = 1; i <= 4096; i++) {
    ds->Update(i, i);
  }
  Rng rng(1);
  for (auto _ : state) {
    auto v = ds->Lookup(1 + rng.NextBounded(4096));
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_HashMapLookupWallTime);

void BM_MemcachedGetWallTime(benchmark::State& state) {
  MockKernel kernel;
  auto driver = KflexMemcachedDriver::Create(kernel);
  for (uint64_t i = 0; i < 1024; i++) {
    driver->Set(0, i, "benchvalue");
  }
  Rng rng(2);
  for (auto _ : state) {
    auto r = driver->Get(0, rng.NextBounded(1024));
    benchmark::DoNotOptimize(r.hit);
  }
}
BENCHMARK(BM_MemcachedGetWallTime);

// With --json <path>, times the guarded-scatter workload per engine with a
// plain chrono loop (outside google-benchmark, so the rows are deterministic
// in shape) and writes machine-readable results including the static guard
// counts and compiled-code size.
int WriteEngineJson(const std::string& path) {
  BenchJson json;
  Program p = GuardedScatterProgram();
  for (int engine = 0; engine < 2; engine++) {
    Runtime runtime{RuntimeOptions{1, 1'000'000'000ULL}};
    LoadOptions lo;
    lo.heap_static_bytes = 128;
    lo.engine = engine != 0 ? ExecEngine::kJit : ExecEngine::kInterp;
    auto id = runtime.Load(p, lo);
    if (!id.ok()) {
      std::fprintf(stderr, "load failed: %s\n", id.status().ToString().c_str());
      return 1;
    }
    EngineInfo info = runtime.engine_info(*id);
    if (engine != 0 && info.used != ExecEngine::kJit) {
      std::fprintf(stderr, "note: JIT fell back to the interpreter (%s); "
                   "recording interpreter timings for the jit row\n",
                   info.fallback_reason.c_str());
    }
    const KieStats& ks = runtime.instrumented(*id).stats;
    uint8_t ctx[64] = {0};
    // Warm up (populates heap pages, faults in code), then measure.
    for (int i = 0; i < 50; i++) {
      runtime.Invoke(*id, 0, ctx, sizeof(ctx));
    }
    constexpr int kOps = 2000;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kOps; i++) {
      InvokeResult r = runtime.Invoke(*id, 0, ctx, sizeof(ctx));
      benchmark::DoNotOptimize(r.verdict);
    }
    auto t1 = std::chrono::steady_clock::now();
    double ns_per_op =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()) /
        kOps;
    auto& row = json.Add("guarded_scatter", ExecEngineName(info.used), ns_per_op);
    row.fields.emplace_back("guards_emitted", static_cast<int64_t>(ks.guards_emitted));
    row.fields.emplace_back("guards_elided", static_cast<int64_t>(ks.guards_elided));
    row.fields.emplace_back("guards_dominated", static_cast<int64_t>(ks.guards_dominated));
    row.fields.emplace_back("code_bytes", static_cast<int64_t>(info.stats.code_bytes));
    std::printf("json row: workload=guarded_scatter engine=%s ns/op=%.1f\n",
                ExecEngineName(info.used), ns_per_op);
  }
  if (!json.Write(path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

// With --obs-json <path>, times the same guarded-scatter workload per engine
// with observability fully off (the shipping default: one relaxed atomic
// load per hook) and fully on (tracing + metrics). The obs_off rows are the
// "observability costs nothing when unused" contract: they must stay within
// 2% of the BENCH_jit.json engine baselines (checked in as BENCH_obs.json;
// see docs/observability.md).
int WriteObsJson(const std::string& path) {
  BenchJson json;
  Program p = GuardedScatterProgram();
  for (int engine = 0; engine < 2; engine++) {
    Runtime runtime{RuntimeOptions{1, 1'000'000'000ULL}};
    LoadOptions lo;
    lo.heap_static_bytes = 128;
    lo.engine = engine != 0 ? ExecEngine::kJit : ExecEngine::kInterp;
    auto id = runtime.Load(p, lo);
    if (!id.ok()) {
      std::fprintf(stderr, "load failed: %s\n", id.status().ToString().c_str());
      return 1;
    }
    EngineInfo info = runtime.engine_info(*id);
    uint8_t ctx[64] = {0};
    for (int i = 0; i < 50; i++) {
      runtime.Invoke(*id, 0, ctx, sizeof(ctx));
    }
    // The off/on delta being measured is a couple of percent — far below the
    // noise floor of a shared host. Alternate short off/on windows (so both
    // states sample identical frequency/steal conditions) and keep the
    // minimum per state: the best estimator of the noise-free cost.
    constexpr int kOps = 1000;
    constexpr int kWindows = 40;  // 20 per state, interleaved
    double best[2] = {0.0, 0.0};
    for (int w = 0; w < kWindows; w++) {
      const int obs = w & 1;
      std::optional<ScopedObsEnable> enabled;
      if (obs != 0) {
        enabled.emplace(/*trace=*/true, /*metrics=*/true);
      }
      auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kOps; i++) {
        InvokeResult r = runtime.Invoke(*id, 0, ctx, sizeof(ctx));
        benchmark::DoNotOptimize(r.verdict);
      }
      auto t1 = std::chrono::steady_clock::now();
      double window_ns =
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()) /
          kOps;
      if (best[obs] == 0.0 || window_ns < best[obs]) {
        best[obs] = window_ns;
      }
    }
    for (int obs = 0; obs < 2; obs++) {
      auto& row = json.Add(obs != 0 ? "guarded_scatter_obs_on" : "guarded_scatter_obs_off",
                           ExecEngineName(info.used), best[obs]);
      row.fields.emplace_back("trace_enabled", obs);
      row.fields.emplace_back("metrics_enabled", obs);
      std::printf("json row: workload=%s engine=%s ns/op=%.1f\n",
                  obs != 0 ? "guarded_scatter_obs_on" : "guarded_scatter_obs_off",
                  ExecEngineName(info.used), best[obs]);
    }
  }
  if (!json.Write(path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace kflex

int main(int argc, char** argv) {
  std::string json_path = kflex::ExtractJsonFlag(&argc, argv);
  std::string obs_json_path = kflex::ExtractFlagValue(&argc, argv, "--obs-json");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  if (!json_path.empty()) {
    return kflex::WriteEngineJson(json_path);
  }
  if (!obs_json_path.empty()) {
    return kflex::WriteObsJson(obs_json_path);
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
