// Ablation (§3.3): extension cancellations must cost ~nothing for correct
// extensions (one terminate load per unbounded-loop iteration) and must
// recover quickly when fired. Measures:
//  1. per-iteration overhead of the terminate load on a list traversal;
//  2. instructions from a pre-armed cancellation to a completed unwind,
//     including releasing a held socket + lock via the object table.
#include <cstdio>

#include "src/base/logging.h"

#include "src/apps/ds/ds.h"
#include "src/apps/ds/harness.h"
#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/kernel/kernel.h"
#include "src/kernel/packet.h"

using namespace kflex;

int main() {
  std::printf("==========================================================================\n");
  std::printf("Ablation: cancellation cost for correct extensions + recovery latency\n");
  std::printf("  paper: near-zero overhead; *terminate stays in L1 (SS3.3)\n");
  std::printf("==========================================================================\n");

  // 1. Traversal overhead: list lookup over 16 K elements.
  {
    KieOptions no_cancel;
    no_cancel.cancellation = false;
    KieOptions with_cancel;

    for (auto [label, kie] : {std::pair<const char*, KieOptions>{"sfi-only", no_cancel},
                              {"sfi+cancellation", with_cancel}}) {
      Runtime runtime{RuntimeOptions{1, 1'000'000'000ULL}};
      auto ds = DsInstance::Create(runtime, BuildLinkedList, kie);
      KFLEX_CHECK(ds.ok());
      constexpr uint64_t kElems = 16384;
      for (uint64_t i = 1; i <= kElems; i++) {
        ds->Update(i, i);
      }
      ds->Lookup(1);  // key 1 is at the tail: full traversal
      std::printf("  full 16K-list traversal, %-17s: %8llu insns (%.3f per element)\n", label,
                  static_cast<unsigned long long>(ds->last_insns()),
                  static_cast<double>(ds->last_insns()) / kElems);
    }
  }

  // 1b. The SS6 alternative: clock-sampled back edges (FUELCHECK) instead of
  // terminate loads — one pseudo-insn per iteration instead of three.
  {
    KieOptions clock;
    clock.cancellation_mode = CancellationMode::kClockSampled;
    Runtime runtime{RuntimeOptions{1, 1'000'000'000ULL, /*fuel=*/0}};
    auto ds = DsInstance::Create(runtime, BuildLinkedList, clock);
    KFLEX_CHECK(ds.ok());
    constexpr uint64_t kElems = 16384;
    for (uint64_t i = 1; i <= kElems; i++) {
      ds->Update(i, i);
    }
    ds->Lookup(1);
    std::printf("  full 16K-list traversal, %-17s: %8llu insns (%.3f per element)\n",
                "sfi+clock-sample",
                static_cast<unsigned long long>(ds->last_insns()),
                static_cast<double>(ds->last_insns()) / kElems);
  }

  // 2. Recovery: infinite loop holding a socket and a lock; pre-armed
  // cancellation must unwind and restore quiescence.
  {
    MockKernel kernel;
    kernel.sockets().Bind(1, 2, kProtoUdp);
    Assembler a;
    a.StImm(BPF_W, R10, -16, 1);
    a.StImm(BPF_W, R10, -12, 2);
    a.Mov(R2, R10);
    a.AddImm(R2, -16);
    a.MovImm(R3, 8);
    a.MovImm(R4, 0);
    a.MovImm(R5, 0);
    a.Call(kHelperSkLookupUdp);
    auto nonnull = a.IfImm(BPF_JNE, R0, 0);
    {
      a.Mov(R6, R0);
      a.LoadHeapAddr(R1, 64);
      a.Call(kHelperKflexSpinLock);
      a.MovImm(R0, 0);
      auto head = a.NewLabel();
      a.Bind(head);
      a.AddImm(R0, 1);
      a.Jmp(head);
    }
    a.Else(nonnull);
    a.MovImm(R0, 0);
    a.EndIf(nonnull);
    a.Exit();
    auto p = a.Finish("runaway", Hook::kXdp, ExtensionMode::kKflex, 1 << 20);
    KFLEX_CHECK(p.ok());
    auto id = kernel.runtime().Load(*p, LoadOptions{});
    KFLEX_CHECK(id.ok());
    KFLEX_CHECK(kernel.Attach(*id).ok());

    kernel.runtime().Cancel(*id);
    KvPacket pkt;
    InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
    auto stats = kernel.runtime().GetStats(*id);
    std::printf(
        "  pre-armed cancellation: cancelled=%d after %llu insns, released %llu kernel "
        "resources, quiescent=%d\n",
        r.cancelled ? 1 : 0, static_cast<unsigned long long>(r.insns),
        static_cast<unsigned long long>(stats.resources_released_on_cancel),
        kernel.Quiescent() ? 1 : 0);
  }

  // 3. Clock-sampled recovery latency: no watchdog, no external Cancel() —
  // the quantum alone bounds the runaway (SS6's sub-second recovery goal).
  {
    RuntimeOptions opts;
    opts.num_cpus = 1;
    opts.fuel_quantum_insns = 100'000;
    MockKernel kernel{opts};
    Assembler a;
    a.MovImm(R0, 0);
    auto head = a.NewLabel();
    a.Bind(head);
    a.AddImm(R0, 1);
    a.Jmp(head);
    auto p = a.Finish("runaway2", Hook::kXdp, ExtensionMode::kKflex, 1 << 20);
    KFLEX_CHECK(p.ok());
    LoadOptions lo;
    lo.kie.cancellation_mode = CancellationMode::kClockSampled;
    auto id = kernel.runtime().Load(*p, lo);
    KFLEX_CHECK(id.ok());
    KFLEX_CHECK(kernel.Attach(*id).ok());
    KvPacket pkt;
    InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
    std::printf(
        "  clock-sampled quantum (100k insns): cancelled=%d after %llu insns, no watchdog "
        "needed\n",
        r.cancelled ? 1 : 0, static_cast<unsigned long long>(r.insns));
  }
  return 0;
}
