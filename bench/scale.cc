// Million-client scaling benchmark over the sharded dispatch runtime
// (docs/sharding.md): throughput and latency vs shard count {1, 2, 4, 8}
// for three workloads, emitted as BENCH_scale.json.
//
//  * guarded-scatter: the SFI-guard microbench kernel wrapped in
//    kflex_spin_lock/unlock so the concurrency analysis certifies it
//    lock-protected and the dispatcher replicates one instance per shard.
//    Steered by 5-tuple (client flow hash), which is near-uniform across a
//    million clients — the best-case RSS scaling curve.
//  * memcached GET/SET (90:10): the §5.1 extension (socket check off — the
//    bench drives the runtime directly, not the mock kernel), steered by KV
//    key under Zipf(0.99) popularity, so the curve shows what key skew does
//    to per-shard balance.
//  * serial-scatter: the same scatter kernel with the lock removed. It
//    certifies serial-only, pins to its home shard, and every steered-
//    elsewhere request is forwarded — the curve stays flat and the forward
//    counter proves the certificate gate is load-bearing.
//
// The host may have a single core; throughput/latency are computed in
// simulated time by the open-loop generator (src/sim/openloop.h) from real
// executions' instruction counts, so the scaling reflects steering balance,
// not the build machine.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_common.h"
#include "src/apps/memcached.h"
#include "src/base/logging.h"
#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/kernel/packet.h"
#include "src/shard/shard.h"
#include "src/shard/steering.h"
#include "src/sim/openloop.h"

namespace kflex {
namespace {

constexpr uint64_t kScatterHeap = 1 << 20;
constexpr uint64_t kScatterLockOff = 64;
constexpr uint64_t kScatterBaseOff = 128;
constexpr uint32_t kScatterCtxSize = 64;
constexpr uint32_t kScatterSlots = 8192;  // ctx offset < slots * 8

// 64 loop iterations x 3 guarded 8-byte stores through ctx-derived offsets.
// `locked` wraps the loop in the spin lock (=> lock-protected certificate);
// without it the plain stores certify serial-only.
Program ScatterProgram(bool locked) {
  Assembler a;
  a.Mov(R9, R1);
  a.Ldx(BPF_W, R6, R9, 0);  // scatter offset (bounded by the builder)
  if (locked) {
    a.LoadHeapAddr(R1, kScatterLockOff);
    a.Call(kHelperKflexSpinLock);
  }
  a.LoadHeapAddr(R7, kScatterBaseOff);
  a.Add(R7, R6);
  a.MovImm(R4, 64);
  auto loop = a.LoopBegin();
  a.LoopBreakIfImm(loop, BPF_JEQ, R4, 0);
  a.StImm(BPF_DW, R7, 0, 1);
  a.StImm(BPF_DW, R7, 8, 2);
  a.StImm(BPF_DW, R7, 16, 3);
  a.SubImm(R4, 1);
  a.LoopEnd(loop);
  if (locked) {
    a.LoadHeapAddr(R1, kScatterLockOff);
    a.Call(kHelperKflexSpinUnlock);
  }
  a.MovImm(R0, 1);
  a.Exit();
  auto p = a.Finish(locked ? "scale_guarded_scatter" : "scale_serial_scatter",
                    Hook::kTracepoint, ExtensionMode::kKflex, kScatterHeap);
  KFLEX_CHECK(p.ok());
  return std::move(p).value();
}

ShardedRuntimeOptions MakeOptions(int shards) {
  ShardedRuntimeOptions o;
  o.num_shards = shards;
  o.batch_size = 32;
  o.queue_capacity = 4096;
  o.runtime.num_cpus = shards;
  o.runtime.quantum_ns = 500'000'000ULL;
  return o;
}

struct RunRow {
  OpenLoopResult result;
  uint64_t forwarded = 0;
  uint64_t dropped = 0;
  uint64_t stolen = 0;
  std::string safety;
  bool replicated = false;
};

uint64_t SumField(const std::vector<ShardStats>& stats, uint64_t ShardStats::*f) {
  uint64_t total = 0;
  for (const ShardStats& s : stats) {
    total += s.*f;
  }
  return total;
}

// One workload at one shard count: build the runtime, load, generate, and
// collect the dispatcher counters.
RunRow RunOne(int shards, const OpenLoopConfig& config, const Program& program,
              const LoadOptions& lo, uint32_t ctx_size, const RequestBuilder& build) {
  ShardedRuntime sharded{MakeOptions(shards)};
  auto ext = sharded.Load(program, lo);
  KFLEX_CHECK(ext.ok());
  const ShardPlacement& place = sharded.placement(*ext);

  RunRow row;
  row.result = RunOpenLoop(sharded, *ext, config, ctx_size, build);
  row.safety = ShardSafetyName(place.safety);
  row.replicated = place.replicated;
  row.forwarded = SumField(row.result.shard_stats, &ShardStats::forwarded);
  row.dropped = SumField(row.result.shard_stats, &ShardStats::dropped);
  row.stolen = SumField(row.result.shard_stats, &ShardStats::stolen);
  sharded.UnloadQuiesced(*ext);
  return row;
}

void PrintRow(const char* workload, int shards, const RunRow& row) {
  const OpenLoopResult& r = row.result;
  std::printf(
      "  %-16s shards=%d  %-14s %-10s thpt=%8.3f Mops/s  p50=%7llu ns  "
      "p99=%8llu ns  fwd=%llu steal=%llu drop=%llu\n",
      workload, shards, row.safety.c_str(), row.replicated ? "replicated" : "pinned",
      r.throughput_mops, static_cast<unsigned long long>(r.latency.Percentile(0.5)),
      static_cast<unsigned long long>(r.latency.Percentile(0.99)),
      static_cast<unsigned long long>(row.forwarded),
      static_cast<unsigned long long>(row.stolen),
      static_cast<unsigned long long>(row.dropped));
}

void AddJsonRow(BenchJson& json, const char* workload, int shards, const RunRow& row) {
  const OpenLoopResult& r = row.result;
  double ns_per_op = r.throughput_mops > 0 ? 1000.0 / r.throughput_mops : 0;
  auto& j = json.Add(workload, "kflex-sharded", ns_per_op);
  j.fields.emplace_back("shards", shards);
  j.fields.emplace_back("replicated", row.replicated ? 1 : 0);
  j.fields.emplace_back("requests", static_cast<int64_t>(r.measured_requests));
  j.fields.emplace_back("throughput_kops",
                        static_cast<int64_t>(r.throughput_mops * 1000.0));
  j.fields.emplace_back("p50_ns", static_cast<int64_t>(r.latency.Percentile(0.5)));
  j.fields.emplace_back("p99_ns", static_cast<int64_t>(r.latency.Percentile(0.99)));
  j.fields.emplace_back("busy_ns", static_cast<int64_t>(r.simulated_busy_ns));
  j.fields.emplace_back("forwarded", static_cast<int64_t>(row.forwarded));
  j.fields.emplace_back("stolen", static_cast<int64_t>(row.stolen));
  j.fields.emplace_back("dropped", static_cast<int64_t>(row.dropped));
}

int Run(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  std::string json_path = ExtractJsonFlag(&argc, argv);
  if (json_path.empty()) {
    json_path = "BENCH_scale.json";
  }

  OpenLoopConfig config;
  config.clients = smoke ? 100'000 : 1'000'000;
  config.total_requests = smoke ? 20'000 : 120'000;
  config.key_space = smoke ? 20'000 : 100'000;

  PrintHeader("Scaling: sharded dispatch, 1M clients, shard count 1/2/4/8",
              "replicated extensions scale near-linearly; serial-only stays flat "
              "(certificate-gated placement, §3.4 heap model per shard)");
  std::printf("  mode=%s clients=%llu requests=%llu keyspace=%llu zipf=%.2f\n\n",
              smoke ? "smoke" : "full", static_cast<unsigned long long>(config.clients),
              static_cast<unsigned long long>(config.total_requests),
              static_cast<unsigned long long>(config.key_space), config.zipf_theta);

  BenchJson json;
  const int kShardCounts[] = {1, 2, 4, 8};

  // ---- guarded scatter (lock-protected, 5-tuple steering) ----
  Program guarded = ScatterProgram(/*locked=*/true);
  LoadOptions scatter_lo;
  // The scatter array is a static region: stores outside the populated pages
  // would take the C2 not-present cancellation instead of executing.
  scatter_lo.heap_static_bytes = kScatterBaseOff + kScatterSlots * 8 + 32;
  RequestBuilder scatter_build = [](uint64_t, uint64_t key, uint64_t client,
                                    uint8_t* ctx, uint32_t) {
    uint32_t off = static_cast<uint32_t>(key % kScatterSlots) * 8;
    std::memcpy(ctx, &off, sizeof(off));
    // Packet workload: RSS steers by flow (client 5-tuple), not key.
    return ShardHashKey(client);
  };
  double guarded_1 = 0, guarded_8 = 0;
  for (int shards : kShardCounts) {
    RunRow row = RunOne(shards, config, guarded, scatter_lo, kScatterCtxSize,
                        scatter_build);
    KFLEX_CHECK(shards == 1 || row.replicated);
    KFLEX_CHECK(row.dropped == 0);
    if (shards == 1) guarded_1 = row.result.throughput_mops;
    if (shards == 8) guarded_8 = row.result.throughput_mops;
    PrintRow("guarded-scatter", shards, row);
    AddJsonRow(json, "guarded_scatter", shards, row);
  }
  std::printf("\n");

  // ---- memcached GET/SET 90:10 (lock-protected, key steering) ----
  MemcachedBuildOptions mc_opts;
  mc_opts.socket_check = false;
  mc_opts.heap_size = 1 << 22;
  Program memcached = BuildMemcachedExtension(mc_opts);
  LoadOptions mc_lo;
  mc_lo.heap_static_bytes = MemcachedLayout::kStaticBytes;
  RequestBuilder mc_build = [](uint64_t i, uint64_t key, uint64_t client,
                               uint8_t* ctx, uint32_t ctx_size) {
    bool is_set = (i % 10) == 0;
    ctx[kOffOp] = static_cast<uint8_t>(is_set ? KvOp::kSet : KvOp::kGet);
    ctx[kOffProto] = is_set ? kProtoTcp : kProtoUdp;
    auto key32 = MakeKey32(key);
    ctx[kOffKeyLen] = static_cast<uint8_t>(key32.size());
    std::memcpy(ctx + kOffKey, key32.data(), key32.size());
    uint32_t src_ip = static_cast<uint32_t>(client);
    uint16_t src_port = static_cast<uint16_t>(40000 + (client >> 32));
    uint16_t dst_port = 11211;
    std::memcpy(ctx + kOffSrcIp, &src_ip, 4);
    std::memcpy(ctx + kOffSrcPort, &src_port, 2);
    std::memcpy(ctx + kOffDstPort, &dst_port, 2);
    if (is_set) {
      uint16_t vallen = 8;
      std::memcpy(ctx + kOffValLen, &vallen, 2);
      std::memcpy(ctx + kOffValue, &key, 8);
    }
    // KV workload: steer by key bytes so GETs land on the shard that SET.
    return ShardHashKvCtx(ctx, ctx_size);
  };
  for (int shards : kShardCounts) {
    RunRow row = RunOne(shards, config, memcached, mc_lo, kCtxSize, mc_build);
    KFLEX_CHECK(row.dropped == 0);
    PrintRow("memcached", shards, row);
    AddJsonRow(json, "memcached_get_set", shards, row);
  }
  std::printf("\n");

  // ---- serial scatter (serial-only, pinned; the certificate gate) ----
  Program serial = ScatterProgram(/*locked=*/false);
  uint64_t serial_forwarded_8 = 0;
  for (int shards : kShardCounts) {
    RunRow row = RunOne(shards, config, serial, scatter_lo, kScatterCtxSize,
                        scatter_build);
    KFLEX_CHECK(!row.replicated);
    if (shards == 8) serial_forwarded_8 = row.forwarded;
    KFLEX_CHECK(shards == 1 || row.forwarded > 0);
    PrintRow("serial-scatter", shards, row);
    AddJsonRow(json, "serial_scatter", shards, row);
  }

  std::printf("\n  guarded-scatter scaling 1->8 shards: %.2fx (want >= 4x)\n",
              guarded_1 > 0 ? guarded_8 / guarded_1 : 0);
  std::printf("  serial-scatter forwards at 8 shards: %llu (want > 0)\n",
              static_cast<unsigned long long>(serial_forwarded_8));

  if (!json.Write(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("  wrote %s\n", json_path.c_str());

  bool ok = guarded_8 >= 4.0 * guarded_1 && serial_forwarded_8 > 0;
  if (!ok) {
    std::fprintf(stderr, "SCALING ACCEPTANCE FAILED\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace kflex

int main(int argc, char** argv) { return kflex::Run(argc, argv); }
