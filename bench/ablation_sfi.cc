// Ablation (§5.4): does co-designing the SFI with the verifier matter?
// Compares executed instructions per op for: KMod (no checks), KFlex (guards
// elided by range analysis), and KFlex with elision disabled (every heap
// access guarded — what a verifier-blind SFI would emit).
#include <cstdio>

#include "src/apps/ds/ds.h"
#include "src/apps/ds/harness.h"
#include "src/base/logging.h"
#include "src/base/rng.h"

using namespace kflex;

namespace {

double MeasureMeanInsns(const DsBuilder& builder, const KieOptions& kie) {
  Runtime runtime{RuntimeOptions{1, 1'000'000'000ULL}};
  auto instance = DsInstance::Create(runtime, builder, kie);
  KFLEX_CHECK(instance.ok());
  DsInstance& ds = *instance;
  Rng rng(3);
  constexpr uint64_t kPopulate = 4096;
  for (uint64_t i = 0; i < kPopulate; i++) {
    ds.Update(i + 1, i);
  }
  uint64_t total = 0;
  constexpr int kOps = 3000;
  for (int i = 0; i < kOps; i++) {
    uint64_t key = 1 + rng.NextBounded(kPopulate);
    switch (i % 3) {
      case 0:
        ds.Update(key, static_cast<uint64_t>(i));
        break;
      case 1:
        ds.Lookup(key);
        break;
      case 2:
        ds.Delete(key);
        ds.Update(key, 1);
        break;
    }
    total += ds.last_insns();
  }
  return static_cast<double>(total) / kOps;
}

}  // namespace

int main() {
  std::printf("==========================================================================\n");
  std::printf("Ablation: SFI guard elision via verifier range analysis (SS5.4)\n");
  std::printf("  executed insns per mixed op: KMod / KFlex / KFlex-without-elision\n");
  std::printf("==========================================================================\n");

  KieOptions kmod;
  kmod.sfi = false;
  kmod.cancellation = false;
  KieOptions kflex;
  KieOptions blind;
  blind.elide_guards = false;

  struct Case {
    const char* name;
    DsBuilder builder;
  };
  const Case cases[] = {
      {"HashMap", BuildHashMap},
      {"RBTree", BuildRbTree},
      {"SkipList", BuildSkipList},
      {"CountMin", BuildCountMinSketch},
  };
  for (const Case& c : cases) {
    double base = MeasureMeanInsns(c.builder, kmod);
    double with = MeasureMeanInsns(c.builder, kflex);
    double without = MeasureMeanInsns(c.builder, blind);
    std::printf(
        "  %-10s KMod %8.1f   KFlex %8.1f (+%5.1f%%)   no-elision %8.1f (+%5.1f%%)   "
        "elision saves %.1f%% of the SFI overhead\n",
        c.name, base, with, 100.0 * (with - base) / base, without,
        100.0 * (without - base) / base,
        without > with ? 100.0 * (without - with) / (without - base) : 0.0);
  }
  return 0;
}
