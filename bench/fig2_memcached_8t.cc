// Figure 2: Memcached (8 server threads) offloaded with KFlex vs eBPF (BMC)
// vs user space — throughput and p99 latency across GET:SET mixes.
#include "bench/fig_memcached.h"

int main() {
  return kflex::RunMemcachedFigure(
      8, "Figure 2: Memcached, 8 server threads",
      "KFlex 1.23-2.83x BMC and 2.33-3.01x user space; p99 1.41-1.95x / 1.95-9.35x lower");
}
