// Figure 6: ZADD offload — Redis's sorted-set insert (hash table + skip
// list, allocated on demand in the fast path) vs user-space Redis, single
// server thread (Redis serializes ZADD on a global lock).
#include "bench/bench_common.h"
#include "src/sim/kv_models.h"

using namespace kflex;

int main() {
  PrintHeader("Figure 6: ZADD throughput and p99 (single server thread)",
              "KFlex 1.65x throughput, 52.8% lower p99 than user-space Redis");
  CostModel cost;
  constexpr uint64_t kKeySpace = 4096;

  ClosedLoopConfig config;
  config.server_threads = 1;
  config.clients = 64;
  config.total_requests = 60'000;
  config.key_space = kKeySpace;
  config.op_for_request = [](uint64_t, uint64_t) { return KvOp::kZadd; };

  auto redis = UserRedisSystem::Create(cost, 1);
  if (!redis.ok()) {
    std::fprintf(stderr, "redis: %s\n", redis.status().ToString().c_str());
    return 1;
  }
  ClosedLoopResult redis_result = RunClosedLoop(**redis, config);

  auto kflex = KflexRedisSystem::Create(cost, 1);
  if (!kflex.ok()) {
    std::fprintf(stderr, "kflex: %s\n", kflex.status().ToString().c_str());
    return 1;
  }
  ClosedLoopResult kflex_result = RunClosedLoop(**kflex, config);

  PrintKvRow("zadd", "Redis", redis_result);
  PrintKvRow("zadd", "KFlex", kflex_result);
  std::printf("  KFlex vs Redis: %.2fx throughput, %.1f%% lower p99\n",
              kflex_result.throughput_mops / redis_result.throughput_mops,
              100.0 * (1.0 - static_cast<double>(kflex_result.latency.Percentile(0.99)) /
                                 static_cast<double>(redis_result.latency.Percentile(0.99))));
  return 0;
}
